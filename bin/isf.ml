(* isf — instrumentation-sampling-framework CLI.

   Subcommands: list, run, profile, dump, table, figure, all, serve,
   fleet. *)

open Cmdliner

module Measure = Harness.Measure

(* Known instrumentations and variants, by CLI name — the single source
   of truth lives in Serve.Job (jobs name the same specs and variants
   over the wire).  The argument parsers below validate against these
   lists, so a typo is a cmdliner usage error (non-zero exit, valid
   choices listed) instead of an uncaught Invalid_argument. *)
let instr_kinds = Serve.Job.instr_kinds
let variants = Serve.Job.variants

(* enum over the names rather than the values: specs and transforms hold
   closures, which cmdliner's enum printer cannot compare *)
let name_conv what names =
  let parse s =
    if List.mem s names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown %s %s (expected one of %s)" what s
             (String.concat ", " names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let spec_of_names = Serve.Job.spec_of_names
let transform_of_variant = Serve.Job.transform_of_variant

(* Graceful SIGINT/SIGTERM for the one-shot verbs: the checkpoint and
   the journal are flushed per record and the run cache writes via
   temp+rename, so nothing buffered can be lost — the handler closes
   the checkpoint channel (best effort) and exits with the
   conventional 128+signal code so callers can tell an interrupt from
   a failure.  [isf serve] overrides these with flag-setting handlers
   for an orderly daemon shutdown. *)
let exit_code_of_signal s = if s = Sys.sigterm then 143 else 130

let oneshot_signal s =
  prerr_endline
    (Printf.sprintf "isf: interrupted by %s; checkpoint and cache are intact"
       (if s = Sys.sigterm then "SIGTERM" else "SIGINT"));
  (try Harness.Robust.set_checkpoint None with _ -> ());
  exit (exit_code_of_signal s)

let install_oneshot_signals () =
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle oneshot_signal) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* ---- arguments ---- *)

let bench_arg =
  let doc = "Benchmark name (see $(b,isf list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let scale_arg =
  let doc = "Workload scale factor (default: benchmark-specific)." in
  Arg.(value & opt (some int) None & info [ "scale"; "s" ] ~docv:"N" ~doc)

let variant_arg =
  let doc =
    "Transformation: full-dup, partial-dup, no-dup, yp-opt, exhaustive."
  in
  Arg.(
    value
    & opt (name_conv "variant" (List.map fst variants)) "full-dup"
    & info [ "variant"; "v" ] ~docv:"V" ~doc)

let instr_arg =
  let doc =
    "Instrumentations (comma separated): call-edge, field-access, edge, value, path, receiver, cct."
  in
  Arg.(
    value
    & opt (list (name_conv "instrumentation" (List.map fst instr_kinds))) []
    & info [ "instr"; "i" ] ~docv:"I,.." ~doc)

let interval_arg =
  let doc = "Counter-based sample interval." in
  Arg.(value & opt int 1000 & info [ "interval"; "k" ] ~docv:"K" ~doc)

let jitter_arg =
  let doc = "Randomized interval span (0 = deterministic)." in
  Arg.(value & opt int 0 & info [ "jitter"; "j" ] ~docv:"J" ~doc)

let timer_arg =
  let doc = "Use the (inaccurate) time-based trigger instead of the counter." in
  Arg.(value & flag & info [ "timer" ] ~doc)

let top_arg =
  let doc = "How many profile entries to print." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Directory to write one CSV per collected profile kind." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let jobs_arg =
  let doc =
    "Run experiment cells on $(docv) domains (default: \\$ISF_JOBS, else one \
     per core minus one).  Output is byte-identical for every N."
  in
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print a progress line (cells done/total) to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let engine_arg =
  let doc =
    "VM execution engine: $(b,fast) (closure-compiled, default) or \
     $(b,ref) (reference interpreter).  The engines are bit-identical, \
     so every number is engine-invariant; $(b,ref) exists as the \
     differential oracle."
  in
  Arg.(
    value
    & opt (enum [ ("ref", `Ref); ("fast", `Fast) ]) `Fast
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let recording_arg =
  let doc =
    "Profile recording path: $(b,slots) (flat-slot recording, default: \
     compile-time event resolution into preallocated buffers, decoded at \
     end of run) or $(b,legacy) (event-by-event hook dispatch, kept as \
     the differential oracle).  The paths are bit-identical, so every \
     number is recording-invariant."
  in
  Arg.(
    value
    & opt (enum [ ("slots", `Slots); ("legacy", `Legacy) ]) `Slots
    & info [ "recording" ] ~docv:"PATH" ~doc)

let traces_arg =
  let doc =
    "Trace-recording JIT tier (Fast engine only): $(b,on) arms hot-loop \
     tracing with the default backedge threshold (256), $(b,off) (the \
     default) disables it, and a positive integer $(i,N) sets the \
     threshold directly.  Traced execution is bit-identical on every \
     observable, so every number is trace-invariant; run-cache keys \
     still record the setting."
  in
  let traces_conv =
    let parse = function
      | "on" -> Ok (Some 256)
      | "off" -> Ok None
      | s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok (Some n)
          | _ ->
              Error
                (`Msg
                  (Printf.sprintf
                     "expected on, off or a positive threshold (got %s)" s)))
    in
    let print ppf = function
      | None -> Format.pp_print_string ppf "off"
      | Some n -> Format.pp_print_int ppf n
    in
    Arg.conv (parse, print)
  in
  Arg.(value & opt traces_conv None & info [ "traces" ] ~docv:"MODE" ~doc)

let stats_arg =
  let doc =
    "Dump the trace-tier event taxonomy (records, aborts, compiles, trace \
     entries, side exits, invalidations) to stderr on exit.  Stdout is \
     untouched, so byte-identity comparisons of command output still hold."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let chaos_arg =
  let doc =
    "Chaos mode: derive a deterministic fault plan from $(docv) for every \
     experiment cell (spurious timer interrupts, cache flushes, sample \
     counter corruption, traps, simulated compile failures).  Failing \
     cells render as ERR and exit non-zero; the same seed reproduces the \
     same faults."
  in
  Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED" ~doc)

let watchdog_arg =
  let doc =
    "Wall-clock budget per experiment cell, in seconds ($(docv) <= 0 \
     disables the watchdog).  A cell over budget becomes an ERR cell; its \
     siblings are unaffected."
  in
  Arg.(value & opt float 600.0 & info [ "watchdog" ] ~docv:"SECS" ~doc)

let checkpoint_arg =
  let doc =
    "Persist each completed experiment cell to $(docv) (append-only, \
     crash-safe) and, when re-run after an interruption, resume from the \
     completed cells instead of recomputing them.  The file records the \
     run configuration and refuses to resume a mismatched run."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let cache_arg =
  let doc =
    "Persist every measurement to $(docv), content-addressed by its full \
     run configuration (code digest, engine, recording, trigger, scale, \
     fault plan), and reuse matching entries across runs and processes.  \
     Results are byte-identical with and without the cache.  Corrupt or \
     truncated entries are recomputed; a directory written by an \
     incompatible version is refused."
  in
  let env = Cmd.Env.info "ISF_CACHE" in
  Arg.(
    value & opt (some string) None & info [ "cache" ] ~env ~docv:"DIR" ~doc)

let set_cache cache =
  try Harness.Runcache.set_dir cache
  with Failure m ->
    prerr_endline ("isf: " ^ m);
    exit 2

let set_trace t = if t then Harness.Pool.trace := true
let set_engine e = Measure.set_engine e
let set_recording r = Measure.set_recording r
let set_traces t = Measure.set_traces t

(* --stats: the taxonomy goes to stderr after the command body ran, so
   stdout stays the command's own bytes *)
let with_stats stats f =
  f ();
  if stats then begin
    Printf.eprintf "trace-tier events:\n";
    List.iter
      (fun (name, c) -> Printf.eprintf "  %-18s %d\n" name c)
      (Vm.Trace.stats ())
  end

let set_robustness ?(chaos = None) ?(watchdog = 600.0) () =
  Measure.set_chaos chaos;
  Measure.set_watchdog watchdog

(* open the checkpoint file, tagged with everything that changes cell
   values, so resuming under a different configuration is an error
   rather than a silently wrong table *)
let set_checkpoint ~which ~scale ~engine ~chaos checkpoint =
  let meta =
    Printf.sprintf "which=%s scale=%s engine=%s chaos=%s" which
      (match scale with Some s -> string_of_int s | None -> "default")
      (match engine with `Ref -> "ref" | `Fast -> "fast")
      (match chaos with Some s -> string_of_int s | None -> "off")
  in
  try Harness.Robust.set_checkpoint ~meta checkpoint
  with Failure m ->
    prerr_endline ("isf: " ^ m);
    exit 2

(* ---- commands ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Workloads.Suite.benchmark) ->
        Printf.printf "%-14s %s\n" b.Workloads.Suite.bname
          b.Workloads.Suite.description)
      Workloads.Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite")
    Term.(const run $ const ())

let run_cmd =
  let run bench scale engine traces stats =
    set_engine engine;
    set_traces traces;
    with_stats stats @@ fun () ->
    let b = Workloads.Suite.find bench in
    let build = Measure.prepare ?scale b in
    let m = Measure.run_baseline build in
    Printf.printf "%s: %d cycles, %d instructions, code %d words\n" bench
      m.Measure.cycles m.Measure.instructions m.Measure.code_words;
    Printf.printf "entries %d, backedge yieldpoints %d\n" m.Measure.entries
      m.Measure.backedge_yps;
    print_string m.Measure.output
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a benchmark without instrumentation")
    Term.(
      const run $ bench_arg $ scale_arg $ engine_arg $ traces_arg $ stats_arg)

let profile_cmd =
  let run bench scale variant instr interval jitter timer top csv engine
      recording traces stats chaos =
    set_engine engine;
    set_recording recording;
    set_traces traces;
    set_robustness ~chaos ();
    with_stats stats @@ fun () ->
    let b = Workloads.Suite.find bench in
    let build = Measure.prepare ?scale b in
    let base = Measure.run_baseline build in
    let spec = spec_of_names instr in
    let transform = transform_of_variant spec variant in
    let trigger =
      if timer then Core.Sampler.Timer_bit
      else Core.Sampler.Counter { interval; jitter }
    in
    let m = Measure.run_transformed ~trigger ~transform build in
    Measure.check_output ~base m;
    Printf.printf
      "%s under %s: overhead %.1f%%, %d checks, %d samples, %d ops\n\n" bench
      variant
      (Measure.overhead_pct ~base m)
      m.Measure.checks m.Measure.samples m.Measure.instrument_ops;
    let col = m.Measure.collector in
    print_string (Profiles.Report.summary col);
    print_newline ();
    print_string (Profiles.Report.top ~n:top col);
    match csv with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (kind, text) ->
            let path = Filename.concat dir (kind ^ ".csv") in
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s\n" path)
          (Profiles.Report.to_csv col)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Run a benchmark under sampled instrumentation")
    Term.(
      const run $ bench_arg $ scale_arg $ variant_arg $ instr_arg
      $ interval_arg $ jitter_arg $ timer_arg $ top_arg $ csv_arg
      $ engine_arg $ recording_arg $ traces_arg $ stats_arg $ chaos_arg)

let dump_cmd =
  let run bench variant instr meth =
    let b = Workloads.Suite.find bench in
    let build = Measure.prepare b in
    let spec = spec_of_names instr in
    let transform = transform_of_variant spec variant in
    List.iter
      (fun f ->
        let name = Ir.Lir.string_of_method_ref f.Ir.Lir.fname in
        if meth = None || meth = Some name then begin
          let r = transform f in
          Printf.printf "%s\n(static checks: %d, duplicated blocks: %d)\n\n"
            (Ir.Pp.func_to_string r.Core.Transform.func)
            r.Core.Transform.static_checks r.Core.Transform.duplicated_blocks
        end)
      build.Measure.base_funcs
  in
  let meth_arg =
    let doc = "Only dump this method (e.g. Main.main)." in
    Arg.(value & opt (some string) None & info [ "method"; "m" ] ~docv:"M" ~doc)
  in
  Cmd.v (Cmd.info "dump" ~doc:"Dump transformed LIR")
    Term.(const run $ bench_arg $ variant_arg $ instr_arg $ meth_arg)

(* run or profile a user-provided .jasm file *)
let exec_cmd =
  let run file args variant instr interval jitter top engine traces stats =
    set_engine engine;
    with_stats stats @@ fun () ->
    let src = In_channel.with_open_text file In_channel.input_all in
    let classes = Jasm.Compile.compile_string ~file src in
    let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
    let entry = { Ir.Lir.mclass = "Main"; mname = "main" } in
    let baseline =
      Vm.Interp.run ~engine ~use_icache:true ?trace_threshold:traces
        (Vm.Program.link classes ~funcs)
        ~entry ~args Vm.Interp.null_hooks
    in
    print_string baseline.Vm.Interp.output;
    Printf.printf "=> %s in %d cycles (%d instructions)\n"
      (match baseline.Vm.Interp.return_value with
      | Some v -> string_of_int v
      | None -> "(no result)")
      baseline.Vm.Interp.cycles baseline.Vm.Interp.instructions;
    if instr <> [] then begin
      let spec = spec_of_names instr in
      let transform = transform_of_variant spec variant in
      let transformed =
        List.map (fun f -> (transform f).Core.Transform.func) funcs
      in
      let collector = Profiles.Collector.create () in
      let sampler =
        Core.Sampler.create (Core.Sampler.Counter { interval; jitter })
      in
      let res =
        Vm.Interp.run ~engine ~use_icache:true ?trace_threshold:traces
          (Vm.Program.link classes ~funcs:transformed)
          ~entry ~args
          (Profiles.Collector.hooks collector sampler)
      in
      Printf.printf
        "\nwith %s sampling (interval %d): %.1f%% overhead, %d samples\n\n"
        variant interval
        (100.0
        *. float_of_int (res.Vm.Interp.cycles - baseline.Vm.Interp.cycles)
        /. float_of_int baseline.Vm.Interp.cycles)
        res.Vm.Interp.counters.Vm.Interp.samples;
      print_string (Profiles.Report.top ~n:top collector)
    end
  in
  let file_arg =
    let doc = "A .jasm source file with a class Main and static fun main(n: int): int." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let args_arg =
    let doc = "Arguments passed to Main.main." in
    Arg.(value & opt (list int) [ 1 ] & info [ "args"; "a" ] ~docv:"N,.." ~doc)
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Compile and run a jasm source file (optionally with sampled \
          instrumentation)")
    Term.(
      const run $ file_arg $ args_arg $ variant_arg $ instr_arg $ interval_arg
      $ jitter_arg $ top_arg $ engine_arg $ traces_arg $ stats_arg)

let table_cmd =
  let run which scale jobs trace engine recording traces stats chaos watchdog
      checkpoint cache adaptive budget =
    set_trace trace;
    set_engine engine;
    set_recording recording;
    set_traces traces;
    set_robustness ~chaos ~watchdog ();
    with_stats stats @@ fun () ->
    let name =
      match which with `All -> "all" | `One w -> Harness.Experiments.name w
    in
    set_checkpoint ~which:name ~scale ~engine ~chaos checkpoint;
    set_cache cache;
    (match which with
    | `All ->
        (* Deterministic run-everything mode: skips the one wall-clock
           measurement (Table 2 compile column, printed "-") so the
           output is byte-identical across runs and across engines, and
           gates the result on the shapes recorded in EXPERIMENTS.md.
           The adaptive experiment is NOT part of it (loop-off output
           stays byte-identical); --adaptive appends it below. *)
        if not (Harness.Experiments.run_gated ?scale ~jobs ()) then exit 1
    | `One w ->
        if Harness.Experiments.run_one ?scale ~jobs ~budget w <> [] then
          exit 2);
    (* `--adaptive` appends the adaptive experiment after whatever was
       selected (a no-op when WHICH was already `adaptive`) *)
    if adaptive && which <> `One Harness.Experiments.Adaptive then begin
      print_newline ();
      if
        Harness.Experiments.run_one ?scale ~jobs ~budget
          Harness.Experiments.Adaptive
        <> []
      then exit 2
    end
  in
  let adaptive_arg =
    let doc =
      "Also run the adaptive experiment (the online FDO loop, DESIGN.md \
       §9) after the selected tables.  Never changes the selected \
       tables' output: the loop only runs in the appended experiment."
    in
    Arg.(value & flag & info [ "adaptive" ] ~doc)
  in
  let budget_arg =
    let doc =
      "Overhead budget for the adaptive experiment's governor, in points \
       of instrumentation overhead (only meaningful with $(b,adaptive))."
    in
    Arg.(
      value & opt float 10.0 & info [ "overhead-budget" ] ~docv:"PCT" ~doc)
  in
  let which_conv =
    let parse s =
      if String.equal s "all" then Ok `All
      else
        match Harness.Experiments.of_name s with
        | w -> Ok (`One w)
        | exception Invalid_argument _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown experiment %s (expected all, 1-5, 7, 8, tableN or \
                    figureN)"
                   s))
    in
    let print ppf = function
      | `All -> Format.pp_print_string ppf "all"
      | `One w -> Format.pp_print_string ppf (Harness.Experiments.name w)
    in
    Arg.conv (parse, print)
  in
  let which_arg =
    let doc =
      "Experiment: 1-5 (tables), 7 or 8 (figures), tableN/figureN, \
       $(b,adaptive) (the online FDO loop), or $(b,all) (every \
       table/figure, fully deterministic, shape-gated)."
    in
    Arg.(required & pos 0 (some which_conv) None & info [] ~docv:"WHICH" ~doc)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce one of the paper's tables/figures")
    Term.(
      const run $ which_arg $ scale_arg $ jobs_arg $ trace_arg $ engine_arg
      $ recording_arg $ traces_arg $ stats_arg $ chaos_arg $ watchdog_arg
      $ checkpoint_arg $ cache_arg $ adaptive_arg $ budget_arg)

let all_cmd =
  let run scale jobs trace engine recording traces stats chaos watchdog
      checkpoint cache =
    set_trace trace;
    set_engine engine;
    set_recording recording;
    set_traces traces;
    set_robustness ~chaos ~watchdog ();
    with_stats stats @@ fun () ->
    set_checkpoint ~which:"everything" ~scale ~engine ~chaos checkpoint;
    set_cache cache;
    if Harness.Experiments.run_all ?scale ~jobs () <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table and figure of the paper")
    Term.(
      const run $ scale_arg $ jobs_arg $ trace_arg $ engine_arg
      $ recording_arg $ traces_arg $ stats_arg $ chaos_arg $ watchdog_arg
      $ checkpoint_arg $ cache_arg)

let ablation_cmd =
  let run scale jobs trace engine recording traces cache =
    set_trace trace;
    set_engine engine;
    set_recording recording;
    set_traces traces;
    set_cache cache;
    Harness.Ablation.run_all ?scale ~jobs ()
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Run the ablation studies (trigger determinism, check cost, \
          duplication strategy, per-thread counters)")
    Term.(
      const run $ scale_arg $ jobs_arg $ trace_arg $ engine_arg
      $ recording_arg $ traces_arg $ cache_arg)

(* ---- service mode ---- *)

let journal_arg =
  let doc =
    "Append-only job journal: every submission and completion is \
     recorded (flushed per record, torn-tail tolerant), so a killed \
     daemon restarted on the same journal replays completed results \
     verbatim and re-runs exactly the in-flight jobs.  A journal \
     written under a different serve configuration is refused."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let capacity_arg =
  let doc =
    "Admission bound: queued jobs beyond $(docv) are shed with an \
     explicit rejection (never queued unboundedly)."
  in
  Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)

let retries_arg =
  let doc = "Transient-failure retries per job (exponential backoff)." in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let quarantine_arg =
  let doc =
    "Bug-classified failures (per job digest) before the job is \
     quarantined: journaled, reported, never run again."
  in
  Arg.(value & opt int 3 & info [ "quarantine-after" ] ~docv:"N" ~doc)

let breaker_arg =
  let doc =
    "Cache-corruption events before the circuit breaker trips and the \
     daemon falls back to the in-memory cache tier (one-way, keeps \
     serving)."
  in
  Arg.(value & opt int 3 & info [ "breaker-after" ] ~docv:"N" ~doc)

let serve_config ~workers ~capacity ~retries ~quarantine_after ~breaker_after =
  { Serve.Daemon.workers; capacity; retries; quarantine_after; breaker_after }

(* journal meta mismatch, malformed job lines: report like set_cache
   does instead of dumping a backtrace *)
let or_die f =
  try f ()
  with Failure m ->
    prerr_endline ("isf: " ^ m);
    exit 2

(* everything that changes result bytes belongs in the journal meta;
   worker count and capacity deliberately do not (scheduling never
   changes results), so a crashed 8-worker run may resume with 1 *)
let serve_meta ~tag ~config ~chaos ~watchdog =
  Printf.sprintf "%s chaos=%s watchdog=%g retries=%d quarantine-after=%d" tag
    (match chaos with Some s -> string_of_int s | None -> "off")
    watchdog config.Serve.Daemon.retries config.Serve.Daemon.quarantine_after

let print_fleet_stats (st : Serve.Fleet.fleet_stats) =
  Printf.printf
    "fleet: %d job(s) in %.2fs (%.1f jobs/s), latency p50 %.1fms p99 \
     %.1fms\n\
     fleet: %d ok, %d failed (classified), %d quarantined, %d shed, %d \
     replayed from journal\n"
    st.Serve.Fleet.jobs st.Serve.Fleet.wall_seconds st.Serve.Fleet.jobs_per_sec
    st.Serve.Fleet.p50_ms st.Serve.Fleet.p99_ms st.Serve.Fleet.ok
    st.Serve.Fleet.failed st.Serve.Fleet.quarantined st.Serve.Fleet.shed
    st.Serve.Fleet.replayed

(* Check the acceptance gates a fleet must pass: every failure carries a
   known classification and no exception ever escaped a worker. *)
let gate_fleet ~uncaught results =
  let bad = Serve.Fleet.unclassified results in
  if bad <> [] then begin
    Printf.eprintf "isf fleet: %d unclassified failure(s):\n"
      (List.length bad);
    List.iter (fun (_, line) -> Printf.eprintf "  %s\n" line) bad;
    exit 2
  end;
  if uncaught > 0 then begin
    Printf.eprintf
      "isf fleet: %d exception(s) escaped a worker's job wrapper\n" uncaught;
    exit 2
  end

let serve_cmd =
  let run socket job_file results_file journal workers capacity retries
      quarantine_after breaker_after chaos watchdog cache trace =
    set_trace trace;
    set_robustness ~chaos ~watchdog ();
    set_cache cache;
    let config =
      serve_config ~workers ~capacity ~retries ~quarantine_after
        ~breaker_after
    in
    (* signal => orderly shutdown: the select loop / drain poll notices
       the flag, the daemon stops without draining its backlog (those
       jobs stay journaled as submitted, so a restart resumes exactly
       them), and we exit 128+signal *)
    let signalled = Atomic.make 0 in
    List.iter
      (fun s ->
        Sys.set_signal s (Sys.Signal_handle (fun s -> Atomic.set signalled s)))
      [ Sys.sigint; Sys.sigterm ];
    match (socket, job_file) with
    | None, None ->
        prerr_endline "isf serve: need --socket PATH or --job-file FILE";
        exit 2
    | Some _, Some _ ->
        prerr_endline "isf serve: --socket and --job-file are exclusive";
        exit 2
    | Some sock, None ->
        let srv = Serve.Server.create ~socket:sock in
        let meta = serve_meta ~tag:"socket" ~config ~chaos ~watchdog in
        let d =
          or_die (fun () ->
              Serve.Daemon.start ~config ?journal ~meta
                ~on_result:(Serve.Server.on_result srv) ())
        in
        Printf.printf
          "isf serve: listening on %s (%d worker(s), capacity %d)\n%!" sock
          config.Serve.Daemon.workers config.Serve.Daemon.capacity;
        Serve.Server.run srv d ~stop:(fun () -> Atomic.get signalled <> 0);
        Serve.Daemon.stop ~drain:false d;
        (match Atomic.get signalled with
        | 0 -> ()
        | s ->
            prerr_endline "isf serve: shut down cleanly; journal is intact";
            exit (exit_code_of_signal s))
    | None, Some jf ->
        let out =
          match results_file with Some o -> o | None -> jf ^ ".results"
        in
        let entries = or_die (fun () -> Serve.Fleet.read_job_file jf) in
        let n = List.length entries in
        let meta =
          let file_digest =
            Harness.Digest.hex
              (In_channel.with_open_bin jf In_channel.input_all)
          in
          serve_meta ~tag:("job-file " ^ file_digest) ~config ~chaos
            ~watchdog
        in
        let d = or_die (fun () -> Serve.Daemon.start ~config ?journal ~meta ()) in
        (* ids are 1-based line numbers; skip everything the journal
           already completed or recovery already requeued *)
        List.iteri
          (fun i (client, job) ->
            let id = i + 1 in
            if
              Atomic.get signalled = 0
              && not (Serve.Daemon.is_known d ~id)
            then Serve.Daemon.submit_pinned d ~id ~client job)
          entries;
        (* poll instead of Daemon.drain so a signal interrupts the wait *)
        let rec wait () =
          if Atomic.get signalled <> 0 then `Signalled
          else
            let st = Serve.Daemon.stats d in
            if
              st.Serve.Daemon.completed >= st.Serve.Daemon.accepted
              && List.length (Serve.Daemon.results d) >= n
            then `Done
            else begin
              Unix.sleepf 0.02;
              wait ()
            end
        in
        (match wait () with
        | `Signalled ->
            let s = Atomic.get signalled in
            Serve.Daemon.stop ~drain:false d;
            prerr_endline
              "isf serve: interrupted; completed jobs are journaled — rerun \
               with the same --journal to resume";
            exit (exit_code_of_signal s)
        | `Done ->
            let results = Serve.Daemon.results d in
            let st = Serve.Daemon.stats d in
            Serve.Daemon.stop d;
            if List.length results <> n then begin
              Printf.eprintf "isf serve: %d job(s) but %d result(s)\n" n
                (List.length results);
              exit 2
            end;
            Serve.Fleet.write_results out results;
            Printf.printf
              "isf serve: %d job(s) done (%d replayed from journal, %d \
               quarantined, %d worker(s)); results in %s\n"
              n st.Serve.Daemon.replayed st.Serve.Daemon.quarantined
              (Array.length st.Serve.Daemon.per_worker)
              out;
            if st.Serve.Daemon.uncaught > 0 then begin
              Printf.eprintf
                "isf serve: %d exception(s) escaped a worker's job wrapper\n"
                st.Serve.Daemon.uncaught;
              exit 2
            end)
  in
  let socket_arg =
    let doc =
      "Serve jobs over the Unix-domain socket at $(docv) (line protocol: \
       HELLO, SUBMIT, STATS, PING, QUIT; results push asynchronously)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let job_file_arg =
    let doc =
      "Drain the job file at $(docv) (one \"client job...\" per line; the \
       line number is the job id) and exit when every job has a result."
    in
    Arg.(value & opt (some string) None & info [ "job-file" ] ~docv:"FILE" ~doc)
  in
  let results_arg =
    let doc = "Where to write result lines (default: JOB-FILE.results)." in
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the profiling daemon: concurrent workers, bounded fair \
          admission, quarantine, journaled crash recovery")
    Term.(
      const run $ socket_arg $ job_file_arg $ results_arg $ journal_arg
      $ jobs_arg $ capacity_arg $ retries_arg $ quarantine_arg $ breaker_arg
      $ chaos_arg $ watchdog_arg $ cache_arg $ trace_arg)

(* shared by `isf merge` and `isf fleet --merge`: the merged aggregate
   rendered through the same report tables as a single profiled run *)
let print_merged ~top merged =
  let col = Profiles.Merge.to_collector merged in
  print_string (Profiles.Report.summary col);
  print_newline ();
  print_string (Profiles.Report.top ~n:top col)

let write_merged ~verb f merged =
  Out_channel.with_open_text f (fun oc ->
      output_string oc (Profiles.Merge.render merged));
  Printf.printf "isf %s: wrote merged profile to %s\n" verb f

let merge_cmd =
  let run files out top csv jobs cache =
    set_cache cache;
    let renders =
      List.map
        (fun f ->
          try In_channel.with_open_text f In_channel.input_all
          with Sys_error m ->
            prerr_endline ("isf merge: " ^ m);
            exit 2)
        files
    in
    let parsed =
      List.map2
        (fun f r ->
          try Profiles.Merge.parse r
          with Profiles.Merge.Parse_error m ->
            Printf.eprintf "isf merge: %s: %s\n" f m;
            exit 2)
        files renders
    in
    (* digest the canonical re-rendering, so a semantically identical
       shard hits the same cached aggregate however it was whitespaced *)
    let digests = List.map Profiles.Merge.digest parsed in
    let merged =
      Harness.Aggregate.merge_cached ~jobs ~digests (fun () -> parsed)
    in
    (match out with Some f -> write_merged ~verb:"merge" f merged | None -> ());
    print_merged ~top merged;
    match csv with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (kind, text) ->
            let path = Filename.concat dir (kind ^ ".csv") in
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s\n" path)
          (Profiles.Report.to_csv (Profiles.Merge.to_collector merged))
  in
  let files_arg =
    let doc =
      "Merged-profile shard files: canonical renderings as written by \
       $(b,isf fleet --merge-out) or this command's $(b,--out)."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Also write the merged aggregate's canonical rendering to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge profile shards (all seven kinds) into one aggregate with \
          byte-deterministic output, independent of shard count and merge \
          order")
    Term.(
      const run $ files_arg $ out_arg $ top_arg $ csv_arg $ jobs_arg
      $ cache_arg)

let fleet_cmd =
  let run n seed clients poison engine recording emit file sequential socket
      out journal workers capacity retries quarantine_after breaker_after
      chaos watchdog cache trace merge merge_out batch window =
    install_oneshot_signals ();
    set_trace trace;
    set_robustness ~chaos ~watchdog ();
    set_cache cache;
    let entries =
      match file with
      | Some f -> or_die (fun () -> Serve.Fleet.read_job_file f)
      | None ->
          Serve.Fleet.jobs ~engine ~recording ~poison ~seed ~n ()
          |> List.mapi (fun i j -> (Serve.Fleet.client_of ~clients i, j))
    in
    match emit with
    | Some f ->
        Serve.Fleet.write_job_file f entries;
        Printf.printf "isf fleet: wrote %d job(s) to %s\n"
          (List.length entries) f
    | None ->
        let want_merge = merge || merge_out <> None in
        let results, profiles, stats =
          if sequential then
            (* the byte-identity reference: no stats to compare *)
            let results, profiles = Serve.Fleet.run_sequential entries in
            (results, profiles, None)
          else
            match socket with
            | Some sock ->
                let results, shed, profiles =
                  or_die (fun () ->
                      Serve.Server.client_run ~batch ~profiles:want_merge
                        ~socket:sock entries)
                in
                if shed > 0 then
                  Printf.printf
                    "isf fleet: %d submission(s) shed and retried\n" shed;
                (results, profiles, None)
            | None ->
                let config =
                  serve_config ~workers ~capacity ~retries ~quarantine_after
                    ~breaker_after
                in
                let meta = serve_meta ~tag:"fleet" ~config ~chaos ~watchdog in
                let st, results, profiles =
                  or_die (fun () ->
                      Serve.Fleet.run_daemon ~config ?journal ~meta ?window
                        entries)
                in
                (results, profiles, Some st)
        in
        (match out with
        | Some f ->
            Serve.Fleet.write_results f results;
            Printf.printf "isf fleet: wrote %d result(s) to %s\n"
              (List.length results) f
        | None -> List.iter (fun (_, line) -> print_endline line) results);
        let uncaught =
          match stats with
          | Some st ->
              print_fleet_stats st;
              st.Serve.Fleet.uncaught
          | None -> 0
        in
        gate_fleet ~uncaught results;
        if want_merge then begin
          let merged =
            or_die (fun () ->
                Serve.Fleet.merge_profiles ~jobs:workers ~entries ~results
                  profiles)
          in
          (match merge_out with
          | Some f -> write_merged ~verb:"fleet" f merged
          | None -> ());
          if merge then begin
            print_newline ();
            print_merged ~top:10 merged
          end
        end
  in
  let n_arg =
    let doc = "How many jobs to generate." in
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Generation seed: the fleet is a pure function of it, so the same \
       seed reproduces the same jobs on every machine."
    in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let clients_arg =
    let doc = "Spread submissions over $(docv) round-robin client names." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let poison_arg =
    let doc =
      "Weave $(docv) deliberately broken jobs through the fleet (each \
       fails bug-classified and must end quarantined)."
    in
    Arg.(value & opt int 0 & info [ "poison" ] ~docv:"N" ~doc)
  in
  let emit_arg =
    let doc = "Write the generated fleet to $(docv) as a job file and exit." in
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"FILE" ~doc)
  in
  let file_arg =
    let doc = "Run the jobs in $(docv) instead of generating them." in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let sequential_arg =
    let doc =
      "Run with one worker in submission order — the byte-identity \
       reference every concurrent run must match."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let socket_arg =
    let doc =
      "Submit to the daemon listening on $(docv) instead of running \
       in-process."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let out_arg =
    let doc = "Write result lines to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let merge_arg =
    let doc =
      "After the run, merge every completed job's profile into one \
       aggregate (parallel merge tree, cached by input digests) and print \
       the same report tables as a single profiled run.  The aggregate is \
       byte-identical however the fleet was sharded or scheduled."
    in
    Arg.(value & flag & info [ "merge" ] ~doc)
  in
  let merge_out_arg =
    let doc =
      "Write the merged aggregate's canonical rendering to $(docv) \
       (implies the merge; readable by $(b,isf merge))."
    in
    Arg.(value & opt (some string) None & info [ "merge-out" ] ~docv:"FILE" ~doc)
  in
  let batch_arg =
    let doc =
      "Pipelined submission batch size for $(b,--socket) runs: jobs per \
       SUBMIT* frame."
    in
    Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc =
      "Closed-loop submission window for in-process runs: keep at most \
       $(docv) jobs outstanding and submit the next on each completion, \
       so latency percentiles measure per-job service latency instead of \
       backlog age.  Results are byte-identical either way.  Default: \
       open loop (everything submitted upfront)."
    in
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Generate and run a deterministic fleet of mixed-scale profiling \
          jobs against the serve engine")
    Term.(
      const run $ n_arg $ seed_arg $ clients_arg $ poison_arg $ engine_arg
      $ recording_arg $ emit_arg $ file_arg $ sequential_arg $ socket_arg
      $ out_arg $ journal_arg $ jobs_arg $ capacity_arg $ retries_arg
      $ quarantine_arg $ breaker_arg $ chaos_arg $ watchdog_arg $ cache_arg
      $ trace_arg $ merge_arg $ merge_out_arg $ batch_arg $ window_arg)

let main =
  let doc =
    "Instrumentation sampling framework (Arnold & Ryder, PLDI 2001) — \
     reproduction CLI"
  in
  Cmd.group (Cmd.info "isf" ~doc)
    [
      list_cmd;
      run_cmd;
      exec_cmd;
      profile_cmd;
      dump_cmd;
      table_cmd;
      all_cmd;
      ablation_cmd;
      serve_cmd;
      fleet_cmd;
      merge_cmd;
    ]

let () =
  install_oneshot_signals ();
  exit (Cmd.eval main)
