(* Quickstart: compile a small jasm program, apply the Full-Duplication
   sampling transform with call-edge instrumentation, run it on the VM,
   and print the sampled profile next to the overhead.

     dune exec examples/quickstart.exe *)

let source =
  {|
  class Worker {
    var done_: int;
    fun step(x: int): int {
      this.done_ = this.done_ + 1;
      if ((x & 1) == 0) { return this.even(x); }
      return this.odd(x);
    }
    fun even(x: int): int { return x >> 1; }
    fun odd(x: int): int { return (x * 3) + 1; }
  }
  class Main {
    static fun main(n: int): int {
      var w: Worker = new Worker;
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        acc = (acc + w.step(i)) & 1073741823;
        i = i + 1;
      }
      print(acc);
      return acc;
    }
  }
|}

let () =
  (* 1. frontend: jasm -> bytecode -> LIR, optimizer, yieldpoints *)
  let classes = Jasm.Compile.compile_string source in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in

  (* 2. baseline run (nothing instrumented) *)
  let entry = { Ir.Lir.mclass = "Main"; mname = "main" } in
  let baseline =
    Vm.Interp.run (Vm.Program.link classes ~funcs) ~entry ~args:[ 50_000 ]
      Vm.Interp.null_hooks
  in

  (* 3. the paper's framework: duplicate the code, put the expensive
     call-edge instrumentation in the duplicated half, check on entries
     and backedges with a counter-based trigger *)
  let transformed =
    List.map
      (fun f -> (Core.Transform.full_dup Core.Spec.call_edge f).Core.Transform.func)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 100; jitter = 0 })
  in
  let sampled =
    Vm.Interp.run
      (Vm.Program.link classes ~funcs:transformed)
      ~entry ~args:[ 50_000 ]
      (Profiles.Collector.hooks collector sampler)
  in

  assert (String.equal baseline.Vm.Interp.output sampled.Vm.Interp.output);
  Printf.printf "baseline:    %d cycles\n" baseline.Vm.Interp.cycles;
  Printf.printf "instrumented:%d cycles (%.1f%% overhead, %d samples)\n"
    sampled.Vm.Interp.cycles
    (100.0
    *. float_of_int (sampled.Vm.Interp.cycles - baseline.Vm.Interp.cycles)
    /. float_of_int baseline.Vm.Interp.cycles)
    sampled.Vm.Interp.counters.Vm.Interp.samples;
  Printf.printf "\nsampled call-edge profile:\n";
  List.iter
    (fun (e, c) ->
      Printf.printf "  %6d  %s\n" c (Profiles.Call_edge.edge_name e))
    (Profiles.Call_edge.to_alist collector.Profiles.Collector.call_edges)
