(* Runtime tunability — "the tradeoff between overhead and accuracy to be
   adjusted easily at runtime", and retiring instrumentation by setting
   the sample condition permanently to false (paper, section 2).

   The sampler starts aggressive (interval 50), backs off to interval
   5000 after 1000 samples, and is disabled entirely after 1020 samples —
   all while the program keeps running the same instrumented code.

     dune exec examples/online_tuning.exe *)

module Measure = Harness.Measure

let () =
  let bench = Workloads.Suite.find "jess" in
  let build = Measure.prepare ~scale:2 bench in
  let base = Measure.run_baseline build in

  let funcs =
    List.map
      (fun f ->
        (Core.Transform.full_dup Harness.Common.both_specs f).Core.Transform.func)
      build.Measure.base_funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 50; jitter = 0 })
  in
  let phase = ref `Aggressive in
  let hooks = Profiles.Collector.hooks collector sampler in
  (* a controller wrapped around the sample condition: this is the "VM
     service thread" that would adjust sampling in a real JVM *)
  let controlled_hooks =
    {
      hooks with
      Vm.Interp.fire =
        (fun tid ->
          let fired = hooks.Vm.Interp.fire tid in
          (match (!phase, Core.Sampler.samples_fired sampler) with
          | `Aggressive, n when n >= 1000 ->
              phase := `Background;
              Core.Sampler.set_interval sampler 5_000;
              print_endline "controller: backing off to interval 5000"
          | `Background, n when n >= 1020 ->
              phase := `Done;
              Core.Sampler.disable sampler;
              print_endline "controller: profile converged, sampling disabled"
          | _ -> ());
          fired);
    }
  in
  let prog = Vm.Program.link build.Measure.classes ~funcs in
  let res =
    Vm.Interp.run ~use_icache:true prog ~entry:Workloads.Suite.entry
      ~args:[ build.Measure.scale ] controlled_hooks
  in
  Printf.printf "\nsamples taken: %d (cap was enforced at runtime)\n"
    res.Vm.Interp.counters.Vm.Interp.samples;
  Printf.printf "overhead: %.1f%% (checks keep running after disable)\n"
    (100.0
    *. float_of_int (res.Vm.Interp.cycles - base.Measure.cycles)
    /. float_of_int base.Measure.cycles);
  Printf.printf "call edges collected: %d\n"
    (Profiles.Call_edge.distinct_edges
       collector.Profiles.Collector.call_edges)
