(* Data-layout optimization from a sampled field-access profile — the use
   case the paper cites for its field-access example ("useful for data
   layout optimizations", e.g. Chilimbi et al.'s cache-conscious
   structure definition).

   The full loop, measured:
     1. sample a field-access profile (Full-Duplication, cheap);
     2. compute a hot-first field ordering per class;
     3. re-link the program with the new layout and compare data-cache
        misses on the VM's d-cache model.

     dune exec examples/field_layout.exe *)

module Lir = Ir.Lir

(* Wide records (24 fields) whose three hot fields are declared far apart,
   so the default layout spreads them over three cache lines. *)
let source =
  {|
class Record {
  var f00: int;  var hotA: int; var f02: int;  var f03: int;
  var f04: int;  var f05: int;  var f06: int;  var f07: int;
  var f08: int;  var f09: int;  var hotB: int; var f11: int;
  var f12: int;  var f13: int;  var f14: int;  var f15: int;
  var f16: int;  var f17: int;  var f18: int;  var f19: int;
  var f20: int;  var hotC: int; var f22: int;  var f23: int;

  fun touch(k: int): int {
    this.hotA = this.hotA + k;
    this.hotB = this.hotB ^ k;
    return this.hotA + this.hotB + this.hotC;
  }
}
class Main {
  static fun main(n: int): int {
    var records: Record[] = new Record[512];
    var i: int = 0;
    while (i < 512) {
      records[i] = new Record;
      records[i].hotC = i;
      i = i + 1;
    }
    var acc: int = 0;
    var r: int = 0;
    while (r < n) {
      acc = (acc + records[(r * 37) % 512].touch(r)) & 16777215;
      r = r + 1;
    }
    print(acc);
    return acc;
  }
}
|}

let entry = { Lir.mclass = "Main"; mname = "main" }
let args = [ 20_000 ]

let () =
  let classes = Jasm.Compile.compile_string source in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  let run ?(layout_override = []) () =
    Vm.Interp.run ~use_dcache:true
      (Vm.Program.link ~layout_override classes ~funcs)
      ~entry ~args Vm.Interp.null_hooks
  in

  (* 1. sampled field-access profile *)
  let instrumented =
    List.map
      (fun f ->
        (Core.Transform.full_dup Core.Spec.field_access f).Core.Transform.func)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 50; jitter = 3 })
  in
  ignore
    (Vm.Interp.run
       (Vm.Program.link classes ~funcs:instrumented)
       ~entry ~args
       (Profiles.Collector.hooks collector sampler));

  (* 2. hot-first ordering per class from the sampled counts *)
  let counts = Profiles.Field_access.to_alist collector.Profiles.Collector.fields in
  Printf.printf "sampled field profile (top 5):\n";
  List.iteri
    (fun i (f, c) -> if i < 5 then Printf.printf "  %8d  %s\n" c f)
    counts;
  let order =
    List.filter_map
      (fun (field, _) ->
        match String.index_opt field '.' with
        | Some i when String.sub field 0 i = "Record" ->
            Some (String.sub field (i + 1) (String.length field - i - 1))
        | _ -> None)
      counts
  in
  Printf.printf "\nhot-first layout for Record: %s ...\n\n"
    (String.concat ", " (List.filteri (fun i _ -> i < 4) order));

  (* 3. measure *)
  let before = run () in
  let after = run ~layout_override:[ ("Record", order) ] () in
  assert (String.equal before.Vm.Interp.output after.Vm.Interp.output);
  Printf.printf "d-cache misses, declaration layout: %9d\n"
    before.Vm.Interp.dcache_misses;
  Printf.printf "d-cache misses, hot-first layout:   %9d  (%.1f%% fewer)\n"
    after.Vm.Interp.dcache_misses
    (100.0
    *. float_of_int (before.Vm.Interp.dcache_misses - after.Vm.Interp.dcache_misses)
    /. float_of_int (max before.Vm.Interp.dcache_misses 1));
  Printf.printf "cycles: %d -> %d (%.1f%% faster)\n" before.Vm.Interp.cycles
    after.Vm.Interp.cycles
    (100.0
    *. float_of_int (before.Vm.Interp.cycles - after.Vm.Interp.cycles)
    /. float_of_int before.Vm.Interp.cycles)
