(* Several instrumentations at once, one duplication — one of the
   framework's advertised advantages: "multiple types of instrumentation
   can be used simultaneously, without the normal concern for overhead
   ... while recompiling the method only once".

   Runs javac with call-edge + field-access + edge-profile + value-profile
   instrumentation in a single Full-Duplication transform and compares the
   total overhead against the sum of the four exhaustive overheads.

     dune exec examples/multi_instrumentation.exe *)

module Measure = Harness.Measure

let specs =
  [
    ("call-edge", Core.Spec.call_edge);
    ("field-access", Core.Spec.field_access);
    ("edge-profile", Core.Spec.edge_profile);
    ("value-profile", Core.Spec.value_profile);
  ]

let () =
  let bench = Workloads.Suite.find "javac" in
  let build = Measure.prepare bench in
  let base = Measure.run_baseline build in
  Printf.printf "exhaustive, one instrumentation at a time:\n";
  let sum =
    List.fold_left
      (fun acc (name, spec) ->
        let m =
          Measure.run_transformed ~transform:(Core.Transform.exhaustive spec)
            build
        in
        let o = Measure.overhead_pct ~base m in
        Printf.printf "  %-14s %6.1f%%\n" name o;
        acc +. o)
      0.0 specs
  in
  Printf.printf "  %-14s %6.1f%%\n\n" "(sum)" sum;
  let all = Core.Spec.combine (List.map snd specs) in
  let m =
    Measure.run_transformed
      ~trigger:(Core.Sampler.Counter { interval = 1_000; jitter = 0 })
      ~transform:(Core.Transform.full_dup all)
      build
  in
  Printf.printf
    "all four sampled together under Full-Duplication (interval 1000):\n";
  Printf.printf "  total overhead %.1f%%, %d samples\n"
    (Measure.overhead_pct ~base m)
    m.Measure.samples;
  let c = m.Measure.collector in
  Printf.printf
    "  collected: %d call edges, %d fields, %d CFG edges, %d value sites\n"
    (Profiles.Call_edge.distinct_edges c.Profiles.Collector.call_edges)
    (Profiles.Field_access.distinct_fields c.Profiles.Collector.fields)
    (List.length (Profiles.Edge_profile.to_alist c.Profiles.Collector.edges))
    (Profiles.Value_profile.n_sites c.Profiles.Collector.values)
