(* Feedback-directed optimization — the paper's motivation: collect a
   cheap *sampled* call-edge profile online, then use it to drive an
   optimization (here: inlining the hottest static call sites) and
   measure the speedup.

     dune exec examples/adaptive_inlining.exe *)

module Lir = Ir.Lir

(* A numeric kernel with several small static helpers.  Static inlining
   heuristics would not know which of the cold/hot helpers matter; the
   sampled profile does. *)
let source =
  {|
  class Math {
    static fun square(x: int): int { return x * x; }
    static fun cube(x: int): int { return x * x * x; }
    static fun hash(x: int): int { return ((x * 2654435761) >> 8) & 65535; }
    static fun rarely(x: int): int { return (x << 7) ^ (x >> 3); }
  }
  class Main {
    static fun main(n: int): int {
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        acc = (acc + Math.hash(i) + Math.square(i & 255)) & 1073741823;
        if ((i & 1023) == 0) { acc = (acc + Math.rarely(i)) & 1073741823; }
        if ((i & 3) == 0) { acc = (acc + Math.cube(i & 63)) & 1073741823; }
        i = i + 1;
      }
      print(acc);
      return acc;
    }
  }
|}

let entry = { Lir.mclass = "Main"; mname = "main" }
let args = [ 60_000 ]

let run classes funcs hooks =
  Vm.Interp.run (Vm.Program.link classes ~funcs) ~entry ~args hooks

let () =
  let classes = Jasm.Compile.compile_string source in
  (* no inlining heuristic in the baseline: the profile decides *)
  let funcs = Opt.Pipeline.front ~inline:false (Bytecode.To_lir.program_to_funcs classes) in
  let baseline = run classes funcs Vm.Interp.null_hooks in

  (* phase 1: sample a call-edge profile at low overhead *)
  let transformed =
    List.map
      (fun f -> (Core.Transform.full_dup Core.Spec.call_edge f).Core.Transform.func)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 200; jitter = 11 })
  in
  let profiled =
    run classes transformed (Profiles.Collector.hooks collector sampler)
  in
  Printf.printf "profiling run: %.1f%% overhead, %d samples\n"
    (100.0
    *. float_of_int (profiled.Vm.Interp.cycles - baseline.Vm.Interp.cycles)
    /. float_of_int baseline.Vm.Interp.cycles)
    profiled.Vm.Interp.counters.Vm.Interp.samples;

  (* phase 2: inline the call sites whose sampled frequency exceeds 10%
     of all samples *)
  let edges = Profiles.Call_edge.to_alist collector.Profiles.Collector.call_edges in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 edges in
  let hot =
    List.filter (fun (_, c) -> c * 10 >= total) edges
  in
  Printf.printf "\nhot edges chosen for inlining:\n";
  List.iter
    (fun ((e : Profiles.Call_edge.edge), c) ->
      Printf.printf "  %5.1f%%  %s\n"
        (100.0 *. float_of_int c /. float_of_int total)
        (Profiles.Call_edge.edge_name e))
    hot;
  let find_func name =
    List.find
      (fun (f : Lir.func) -> String.equal (Lir.string_of_method_ref f.Lir.fname) name)
      funcs
  in
  let inline_edge funcs ((e : Profiles.Call_edge.edge), _) =
    List.map
      (fun (f : Lir.func) ->
        if Lir.string_of_method_ref f.Lir.fname <> e.Profiles.Call_edge.caller
        then f
        else begin
          (* locate the static call with the recorded site id *)
          let site_pos = ref None in
          for l = 0 to Lir.num_blocks f - 1 do
            let b = Lir.block f l in
            if b.Lir.role <> Lir.Dead then
              Array.iteri
                (fun i instr ->
                  match instr with
                  | Lir.Call { kind = Lir.Static; site; _ }
                    when site = e.Profiles.Call_edge.site ->
                      site_pos := Some (l, i)
                  | _ -> ())
                b.Lir.instrs
          done;
          match !site_pos with
          | None -> f
          | Some at ->
              Opt.Inline.inline_static_call f
                ~callee:(find_func e.Profiles.Call_edge.callee)
                ~at
        end)
      funcs
  in
  let optimized = List.fold_left inline_edge funcs hot in
  let optimized = List.map (Opt.Pass.run_all Opt.Pipeline.front_passes) optimized in
  let opt_run = run classes optimized Vm.Interp.null_hooks in
  assert (String.equal baseline.Vm.Interp.output opt_run.Vm.Interp.output);
  Printf.printf
    "\nbaseline:  %d cycles\ninlined:   %d cycles  (%.1f%% faster)\n"
    baseline.Vm.Interp.cycles opt_run.Vm.Interp.cycles
    (100.0
    *. float_of_int (baseline.Vm.Interp.cycles - opt_run.Vm.Interp.cycles)
    /. float_of_int baseline.Vm.Interp.cycles)
