examples/path_profiling.ml: Core Harness Hashtbl Ir List Printf Profiles String Workloads
