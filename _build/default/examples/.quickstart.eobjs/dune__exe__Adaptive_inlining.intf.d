examples/adaptive_inlining.mli:
