examples/adaptive_inlining.ml: Array Bytecode Core Ir Jasm List Opt Printf Profiles String Vm
