examples/online_tuning.mli:
