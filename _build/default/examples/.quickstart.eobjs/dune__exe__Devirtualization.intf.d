examples/devirtualization.mli:
