examples/quickstart.mli:
