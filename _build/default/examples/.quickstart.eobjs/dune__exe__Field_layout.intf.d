examples/field_layout.mli:
