examples/multi_instrumentation.ml: Core Harness List Printf Profiles Workloads
