examples/online_tuning.ml: Core Harness List Printf Profiles Vm Workloads
