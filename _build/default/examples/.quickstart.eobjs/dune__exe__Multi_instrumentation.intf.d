examples/multi_instrumentation.mli:
