examples/devirtualization.ml: Array Bytecode Core Harness Ir List Opt Option Printf Profiles String Vm Workloads
