examples/path_profiling.mli:
