examples/quickstart.ml: Bytecode Core Ir Jasm List Opt Printf Profiles String Vm
