examples/receiver_prediction.mli:
