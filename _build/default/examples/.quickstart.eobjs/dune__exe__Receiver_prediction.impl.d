examples/receiver_prediction.ml: Core Harness List Printf Profiles Workloads
