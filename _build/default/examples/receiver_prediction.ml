(* Receiver-class prediction from a sampled profile — the classic
   feedback-directed optimization (Grove et al., cited by the paper) that
   needs exactly the kind of cheap online profile this framework
   provides: for each virtual call site, which class does the receiver
   almost always have?  A JIT would use the answer to inline a guarded
   fast path.

     dune exec examples/receiver_prediction.exe *)

module Measure = Harness.Measure

let () =
  (* mtrt's BVH is traversed through Node.hit, dispatching to Inner and
     Leaf: inner nodes dominate near the root *)
  let bench = Workloads.Suite.find "mtrt" in
  let build = Measure.prepare bench in
  let base = Measure.run_baseline build in
  let m =
    Measure.run_transformed
      ~trigger:(Core.Sampler.Counter { interval = 50; jitter = 3 })
      ~transform:(Core.Transform.full_dup Profiles.Specs.receiver_profile)
      build
  in
  Printf.printf
    "sampled receiver profile of 'mtrt' (%.1f%% overhead, %d samples)\n\n"
    (Measure.overhead_pct ~base m)
    m.Measure.samples;
  let r = m.Measure.collector.Profiles.Collector.receivers in
  Printf.printf "%-28s %-10s %s\n" "virtual call site" "dominant" "fraction";
  List.iter
    (fun (meth, site) ->
      match Profiles.Receiver_profile.dominant r ~meth ~site with
      | Some (cls, frac) ->
          Printf.printf "%-28s %-10s %5.1f%%%s\n"
            (Printf.sprintf "%s@%d" meth site)
            cls (100.0 *. frac)
            (if frac >= 0.95 then "   <- inline a guarded fast path" else "")
      | None -> ())
    (Profiles.Receiver_profile.sites r);
  let mono = Profiles.Receiver_profile.monomorphic_sites ~threshold:0.95 r in
  Printf.printf "\n%d site(s) are >=95%% monomorphic in the sampled profile\n"
    (List.length mono)
