(* Ball-Larus path profiling under sampling: each sample captures exactly
   one acyclic path (execution enters the duplicated code at a start
   point and leaves it at the next backedge or return), so the sampled
   histogram identifies the hot paths through a method.

     dune exec examples/path_profiling.exe *)

module Measure = Harness.Measure
module Lir = Ir.Lir

let () =
  let bench = Workloads.Suite.find "javac" in
  let build = Measure.prepare bench in
  let base = Measure.run_baseline build in
  let m =
    Measure.run_transformed
      ~trigger:(Core.Sampler.Counter { interval = 200; jitter = 13 })
      ~transform:(Core.Transform.full_dup Profiles.Specs.path_profile)
      build
  in
  Printf.printf "sampled path profile of 'javac' (%.1f%% overhead, %d samples)\n\n"
    (Measure.overhead_pct ~base m)
    m.Measure.samples;
  let paths = m.Measure.collector.Profiles.Collector.paths in
  Printf.printf "%d distinct acyclic paths observed; top 10:\n\n"
    (Profiles.Path_profile.distinct_paths paths);
  (* decode the hot paths back into block sequences *)
  let numberings = Hashtbl.create 16 in
  List.iter
    (fun (f : Lir.func) ->
      Hashtbl.replace numberings
        (Lir.string_of_method_ref f.Lir.fname)
        (Profiles.Ball_larus.number f))
    build.Measure.base_funcs;
  List.iteri
    (fun i ((meth, start, path), count) ->
      if i < 10 then begin
        let bl = Hashtbl.find numberings meth in
        let blocks = Profiles.Ball_larus.decode bl ~start path in
        Printf.printf "%6d  %s: %s\n" count meth
          (String.concat "->" (List.map (Printf.sprintf "L%d") blocks))
      end)
    (Profiles.Path_profile.to_alist paths)
