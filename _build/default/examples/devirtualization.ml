(* The full feedback-directed-optimization loop for virtual calls:

   1. sample a receiver-class profile online (cheap, Full-Duplication);
   2. pick the call sites with a dominant receiver class;
   3. devirtualize them with a class-test guard and inline the predicted
      implementation (Opt.Devirt);
   4. re-run and measure the speedup.

     dune exec examples/devirtualization.exe *)

module Measure = Harness.Measure
module Lir = Ir.Lir

let entry = Workloads.Suite.entry

let () =
  let bench = Workloads.Suite.find "mtrt" in
  let build = Measure.prepare bench in
  let base = Measure.run_baseline build in

  (* phase 1: sampled receiver profile *)
  let m =
    Measure.run_transformed
      ~trigger:(Core.Sampler.Counter { interval = 100; jitter = 7 })
      ~transform:(Core.Transform.full_dup Profiles.Specs.receiver_profile)
      build
  in
  let receivers = m.Measure.collector.Profiles.Collector.receivers in
  Printf.printf "profiling run: %.1f%% overhead, %d samples\n\n"
    (Measure.overhead_pct ~base m)
    m.Measure.samples;

  (* phase 2+3: guard-and-inline sites with >= 55%% dominant receivers *)
  let classes = build.Measure.classes in
  let funcs = build.Measure.base_funcs in
  let find_func name =
    List.find_opt
      (fun (f : Lir.func) ->
        String.equal (Lir.string_of_method_ref f.Lir.fname) name)
      funcs
  in
  let optimized =
    List.map
      (fun (f : Lir.func) ->
        let meth = Lir.string_of_method_ref f.Lir.fname in
        (* collect this function's predictable sites, then transform one at
           a time (labels shift after each edit, so re-locate by site id) *)
        let plans =
          List.filter_map
            (fun (m', site) ->
              if m' <> meth then None
              else
                match
                  Profiles.Receiver_profile.dominant receivers ~meth ~site
                with
                | Some (cls, frac) when frac >= 0.55 -> Some (site, cls, frac)
                | _ -> None)
            (Profiles.Receiver_profile.sites receivers)
        in
        List.fold_left
          (fun f (site, cls, frac) ->
            (* find the virtual call with this site id *)
            let at = ref None in
            for l = 0 to Lir.num_blocks f - 1 do
              let b = Lir.block f l in
              if b.Lir.role <> Lir.Dead then
                Array.iteri
                  (fun i instr ->
                    match instr with
                    | Lir.Call { kind = Lir.Virtual; site = s; target; _ }
                      when s = site -> (
                        (* resolve the implementation the predicted class
                           dispatches to *)
                        match
                          Bytecode.Classfile.resolve_method classes ~cls
                            ~name:target.Lir.mname
                        with
                        | Some _ -> at := Some (l, i, target.Lir.mname)
                        | None -> ())
                    | _ -> ())
                  b.Lir.instrs
            done;
            match !at with
            | None -> f
            | Some (l, i, mname) ->
                let owner, _ =
                  Option.get
                    (Bytecode.Classfile.resolve_method_owner classes ~cls
                       ~name:mname)
                in
                let callee_name = owner ^ "." ^ mname in
                (match find_func callee_name with
                | Some callee ->
                    Printf.printf
                      "devirtualizing %s@%d -> %s (%.0f%% of receivers)\n" meth
                      site callee_name (100.0 *. frac);
                    Opt.Devirt.guarded_inline f ~at:(l, i) ~predicted:cls
                      ~callee
                | None -> f))
          f plans)
      funcs
  in
  let optimized = List.map (Opt.Pass.run_all Opt.Pipeline.front_passes) optimized in

  (* phase 4: measure *)
  let run fs =
    Vm.Interp.run ~use_icache:true
      (Vm.Program.link classes ~funcs:fs)
      ~entry ~args:[ build.Measure.scale ] Vm.Interp.null_hooks
  in
  let before = run funcs and after = run optimized in
  assert (String.equal before.Vm.Interp.output after.Vm.Interp.output);
  Printf.printf "\nbaseline:       %d cycles\ndevirtualized:  %d cycles  (%.1f%% faster)\n"
    before.Vm.Interp.cycles after.Vm.Interp.cycles
    (100.0
    *. float_of_int (before.Vm.Interp.cycles - after.Vm.Interp.cycles)
    /. float_of_int before.Vm.Interp.cycles)
