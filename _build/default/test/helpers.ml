(* Shared helpers for the test suites. *)

module Lir = Ir.Lir

let compile src = Jasm.Compile.compile_string src

(* Full baseline pipeline: compile, optimize, insert yieldpoints, link. *)
let build ?(inline = false) src =
  let classes = compile src in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let funcs = Opt.Pipeline.front ~inline funcs in
  (classes, funcs)

let link classes funcs = Vm.Program.link classes ~funcs

let run_main ?fuel ?seed prog args =
  Vm.Interp.run ?fuel ?seed prog
    ~entry:{ Lir.mclass = "Main"; mname = "main" }
    ~args Vm.Interp.null_hooks

(* Compile + run a source whose entry is Main.main(int): return result. *)
let exec ?fuel ?seed src args =
  let classes, funcs = build src in
  run_main ?fuel ?seed (link classes funcs) args

(* Run a transformed variant with a collector and sampler. *)
let exec_transformed ?fuel ?seed ~transform ~trigger src args =
  let classes, funcs = build src in
  let funcs' =
    List.map (fun f -> (transform f : Core.Transform.result).Core.Transform.func) funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler = Core.Sampler.create trigger in
  let hooks = Profiles.Collector.hooks collector sampler in
  let prog = link classes funcs' in
  let res =
    Vm.Interp.run ?fuel ?seed prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args hooks
  in
  (res, collector)

let fib_src =
  {|
  class Main {
    static fun main(n: int): int {
      var r: int = Main.fib(n);
      print(r);
      return r;
    }
    static fun fib(n: int): int {
      if (n < 2) { return n; }
      return Main.fib(n - 1) + Main.fib(n - 2);
    }
  }
|}

let loop_src =
  {|
  class Counter {
    var total: int;
    fun bump(k: int) {
      this.total = this.total + k;
    }
  }
  class Main {
    static fun main(n: int): int {
      var c: Counter = new Counter;
      var i: int = 0;
      while (i < n) {
        c.bump(i);
        i = i + 1;
      }
      print(c.total);
      return c.total;
    }
  }
|}
