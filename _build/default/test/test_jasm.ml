(* jasm frontend: lexer, parser, semantic analysis and codegen, exercised
   mostly end-to-end (compile + run on the VM and check results). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let result src args =
  let res = Helpers.exec src args in
  Option.get res.Vm.Interp.return_value

let output src args = (Helpers.exec src args).Vm.Interp.output

(* wrap an int expression into a program returning it *)
let expr_prog e =
  Printf.sprintf
    "class Main { static fun main(n: int): int { return %s; } }" e

let expr_result ?(n = 0) e = result (expr_prog e) [ n ]

(* -------- lexer -------- *)

let lexer_tokens () =
  let toks = Jasm.Lexer.tokenize "while (x <= 10) { x = x << 2; } // end" in
  let kinds = List.map fst toks in
  check_bool "has while" true (List.mem Jasm.Token.KW_while kinds);
  check_bool "has <=" true (List.mem Jasm.Token.LE kinds);
  check_bool "has <<" true (List.mem Jasm.Token.SHL kinds);
  check_bool "comment dropped" true
    (not (List.exists (function Jasm.Token.IDENT "end" -> true | _ -> false) kinds));
  check_bool "ends with eof" true (List.mem Jasm.Token.EOF kinds)

let lexer_comments () =
  let toks = Jasm.Lexer.tokenize "/* a /* nested-ish */ 42" in
  check_bool "block comment skipped" true
    (List.exists (function Jasm.Token.INT 42, _ -> true | _ -> false)
       (List.map (fun (t, p) -> (t, p)) toks))

let lexer_errors () =
  check_bool "bad char raises" true
    (try
       ignore (Jasm.Lexer.tokenize "a ? b");
       false
     with Jasm.Loc.Error _ -> true);
  check_bool "unterminated comment raises" true
    (try
       ignore (Jasm.Lexer.tokenize "/* never closed");
       false
     with Jasm.Loc.Error _ -> true)

let lexer_positions () =
  let toks = Jasm.Lexer.tokenize "a\n  b" in
  match toks with
  | (_, p1) :: (_, p2) :: _ ->
      check_int "line 1" 1 p1.Jasm.Loc.line;
      check_int "line 2" 2 p2.Jasm.Loc.line;
      check_int "col 3" 3 p2.Jasm.Loc.col
  | _ -> Alcotest.fail "expected two tokens"

(* -------- parser (via evaluation) -------- *)

let precedence () =
  check_int "mul before add" 14 (expr_result "2 + 3 * 4");
  check_int "parens" 20 (expr_result "(2 + 3) * 4");
  check_int "shift vs add" 65536 (expr_result "1 << 2 + 2 * 7");
  (* shift binds looser than additive, as in Java: 1 << (2 + 14) *)
  check_int "unary minus" (-6) (expr_result "-2 * 3");
  check_int "remainder" 2 (expr_result "17 % 5");
  check_int "bitops" 6 (expr_result "7 & 14");
  check_int "xor" 5 (expr_result "6 ^ 3")

let parser_errors () =
  let bad = [ "class { }"; "class A extends { }"; "class A { fun f( { } }" ] in
  List.iter
    (fun src ->
      check_bool ("rejects: " ^ src) true
        (try
           ignore (Jasm.Parser.parse_program src);
           false
         with Jasm.Loc.Error _ -> true))
    bad

let if_else_chain () =
  let src =
    {|
    class Main {
      static fun classify(x: int): int {
        if (x < 0) { return 0 - 1; }
        else if (x == 0) { return 0; }
        else { return 1; }
      }
      static fun main(n: int): int {
        return (Main.classify(0 - 5) * 100) + (Main.classify(0) * 10) + Main.classify(7);
      }
    }
  |}
  in
  check_int "chain" (-99) (result src [ 0 ])

let short_circuit () =
  (* the right operand of && must not run when the left is false:
     division by zero would trap *)
  let src =
    {|
    class Main {
      static fun main(n: int): int {
        var x: int = 0;
        if (n > 0 && (10 / n) > 1) { x = 1; }
        if (n > 0 || (10 / (n + 1)) > 100) { x = x + 2; }
        return x;
      }
    }
  |}
  in
  check_int "n=0 avoids both divisions" 0 (result src [ 0 ]);
  check_int "n=4 takes both" 3 (result src [ 4 ])

let for_loop () =
  let src =
    {|
    class Main {
      static fun main(n: int): int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) { s = s + i; }
        return s;
      }
    }
  |}
  in
  check_int "sum" 45 (result src [ 10 ])

let switch_stmt () =
  let src =
    {|
    class Main {
      static fun pick(x: int): int {
        var r: int = 0;
        switch (x) {
          case 1: { r = 10; }
          case 2: { r = 20; }
          case 7: { r = 70; }
          default: { r = 0 - 1; }
        }
        return r;
      }
      static fun main(n: int): int {
        return Main.pick(1) + Main.pick(2) + Main.pick(7) + Main.pick(5);
      }
    }
  |}
  in
  check_int "switch" 99 (result src [ 0 ])

let inheritance_dispatch () =
  let src =
    {|
    class Shape {
      fun area(): int { return 0; }
      fun describe(): int { return this.area() * 10; }
    }
    class Square extends Shape {
      var side: int;
      fun area(): int { return this.side * this.side; }
    }
    class Main {
      static fun main(n: int): int {
        var s: Square = new Square;
        s.side = 4;
        var sh: Shape = s;       // upcast
        return sh.describe();    // must dispatch to Square.area
      }
    }
  |}
  in
  check_int "virtual dispatch through base pointer" 160 (result src [ 0 ])

let inherited_fields () =
  let src =
    {|
    class Base { var a: int; }
    class Derived extends Base { var b: int; }
    class Main {
      static fun main(n: int): int {
        var d: Derived = new Derived;
        d.a = 7;
        d.b = 35;
        return d.a + d.b;
      }
    }
  |}
  in
  check_int "inherited field" 42 (result src [ 0 ])

let static_fields () =
  let src =
    {|
    class Counter {
      static var total: int;
      static fun bump(k: int) { Counter.total = Counter.total + k; }
    }
    class Main {
      static fun main(n: int): int {
        var i: int = 0;
        while (i < n) { Counter.bump(i); i = i + 1; }
        return Counter.total;
      }
    }
  |}
  in
  check_int "static accumulation" 4950 (result src [ 100 ])

let unqualified_field_access () =
  let src =
    {|
    class Main {
      var x: int;
      static var g: int;
      fun set(v: int) { x = v; g = g + v; }   // unqualified field names
      static fun main(n: int): int {
        var m: Main = new Main;
        m.set(20);
        m.set(2);
        return m.x + Main.g;
      }
    }
  |}
  in
  check_int "unqualified access" 24 (result src [ 0 ])

let arrays_2d () =
  let src =
    {|
    class Main {
      static fun main(n: int): int {
        var grid: int[][] = new int[n][];
        var i: int = 0;
        while (i < n) {
          grid[i] = new int[n];
          var j: int = 0;
          while (j < n) { grid[i][j] = i * j; j = j + 1; }
          i = i + 1;
        }
        return grid[3][4] + grid.length + grid[0].length;
      }
    }
  |}
  in
  check_int "2-D arrays" 22 (result src [ 5 ])

let null_compare () =
  let src =
    {|
    class Box { var v: int; }
    class Main {
      static fun main(n: int): int {
        var b: Box = null;
        if (b == null) { b = new Box; b.v = 9; }
        if (b != null) { return b.v; }
        return 0 - 1;
      }
    }
  |}
  in
  check_int "null handling" 9 (result src [ 0 ])

let recursion_and_print () =
  check_int "fib" 144 (result Helpers.fib_src [ 12 ]);
  Alcotest.(check string) "print output" "144\n" (output Helpers.fib_src [ 12 ])

let bool_ops () =
  let src =
    {|
    class Main {
      static fun main(n: int): int {
        var t: bool = true;
        var f: bool = !t;
        var c: bool = (n > 2) == t;
        if (c && !f) { return 1; }
        return 0;
      }
    }
  |}
  in
  check_int "bool algebra" 1 (result src [ 5 ])

(* -------- sema errors -------- *)

let rejects msg src =
  Alcotest.test_case msg `Quick (fun () ->
      check_bool msg true
        (try
           ignore (Jasm.Compile.compile_string src);
           false
         with Failure _ -> true))

let sema_error_cases =
  [
    rejects "unknown variable" "class Main { static fun main(n: int) { x = 1; } }";
    rejects "type mismatch assign"
      "class Main { static fun main(n: int) { var b: bool = 3; } }";
    rejects "int condition"
      "class Main { static fun main(n: int) { if (n) { } } }";
    rejects "unknown class"
      "class Main { static fun main(n: int) { var x: Foo = null; } }";
    rejects "duplicate class" "class A { } class A { }";
    rejects "inheritance cycle" "class A extends B { } class B extends A { }";
    rejects "missing return"
      "class Main { static fun f(n: int): int { if (n > 0) { return 1; } } static fun main(n: int) { } }";
    rejects "void returns value"
      "class Main { static fun main(n: int) { return 3; } }";
    rejects "this in static"
      "class Main { var x: int; static fun main(n: int) { this.x = 1; } }";
    rejects "arity mismatch"
      "class Main { static fun f(a: int, b: int): int { return a; } static fun main(n: int) { var x: int = Main.f(1); } }";
    rejects "calling instance method statically"
      "class A { fun m(): int { return 1; } } class Main { static fun main(n: int) { var x: int = A.m(); } }";
    rejects "override signature mismatch"
      "class A { fun m(): int { return 1; } } class B extends A { fun m(x: int): int { return x; } }";
    rejects "duplicate local"
      "class Main { static fun main(n: int) { var a: int = 1; var a: int = 2; } }";
    rejects "duplicate case"
      "class Main { static fun main(n: int) { switch (n) { case 1: { } case 1: { } default: { } } } }";
    rejects "expression statement must be a call"
      "class Main { static fun main(n: int) { n + 1; } }";
    rejects "spawn of instance method"
      "class A { fun m() { } } class Main { static fun main(n: int) { spawn A.m(); } }";
    rejects "array length as lvalue is not a field"
      "class Main { static fun main(n: int) { var a: int[] = new int[3]; a.length = 4; } }";
  ]

let shadowing_ok () =
  let src =
    {|
    class Main {
      static fun main(n: int): int {
        var a: int = 1;
        {
          var a: int = 2;
          n = n + a;
        }
        return n + a;
      }
    }
  |}
  in
  check_int "inner scope shadows" 13 (result src [ 10 ])

let suite =
  [
    ( "jasm.lexer",
      [
        Alcotest.test_case "token kinds" `Quick lexer_tokens;
        Alcotest.test_case "comments" `Quick lexer_comments;
        Alcotest.test_case "errors" `Quick lexer_errors;
        Alcotest.test_case "positions" `Quick lexer_positions;
      ] );
    ( "jasm.language",
      [
        Alcotest.test_case "operator precedence" `Quick precedence;
        Alcotest.test_case "parser errors" `Quick parser_errors;
        Alcotest.test_case "if-else chain" `Quick if_else_chain;
        Alcotest.test_case "short circuit" `Quick short_circuit;
        Alcotest.test_case "for loop" `Quick for_loop;
        Alcotest.test_case "switch" `Quick switch_stmt;
        Alcotest.test_case "virtual dispatch" `Quick inheritance_dispatch;
        Alcotest.test_case "inherited fields" `Quick inherited_fields;
        Alcotest.test_case "static fields" `Quick static_fields;
        Alcotest.test_case "unqualified fields" `Quick unqualified_field_access;
        Alcotest.test_case "2-D arrays" `Quick arrays_2d;
        Alcotest.test_case "null" `Quick null_compare;
        Alcotest.test_case "recursion + print" `Quick recursion_and_print;
        Alcotest.test_case "bool ops" `Quick bool_ops;
        Alcotest.test_case "scoped shadowing" `Quick shadowing_ok;
      ] );
    ("jasm.sema-errors", sema_error_cases);
  ]
