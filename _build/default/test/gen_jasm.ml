(* Random well-typed jasm program generator for property-based tests.

   Programs are guaranteed to terminate (loops are bounded counters, the
   static call graph is acyclic) and to be deterministic, so any two
   executions — baseline vs optimized, baseline vs instrumented — must
   print the same output and return the same checksum.

   Division is always by a non-zero constant, so no run traps. *)

open QCheck.Gen

type ctx = { vars : string list; funcs : int (* callable f0..f(n-1) *) }

let int_lit = map string_of_int (int_range (-99) 99)

let var ctx = oneofl ctx.vars

let rec expr ctx depth =
  if depth = 0 then oneof [ int_lit; var ctx ]
  else
    frequency
      [
        (2, int_lit);
        (3, var ctx);
        ( 4,
          let* op = oneofl [ "+"; "-"; "*"; "&"; "^"; "|" ] in
          let* a = expr ctx (depth - 1) in
          let* b = expr ctx (depth - 1) in
          (* keep multiplication small to avoid overflow weirdness *)
          if op = "*" then
            return (Printf.sprintf "(((%s) %% 97) * ((%s) %% 97))" a b)
          else return (Printf.sprintf "((%s) %s (%s))" a op b) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) / %d)" a k) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) %% %d)" a k) );
        ( 2,
          if ctx.funcs = 0 then var ctx
          else
            let* f = int_range 0 (ctx.funcs - 1) in
            let* a = expr ctx (depth - 1) in
            let* b = expr ctx (depth - 1) in
            return (Printf.sprintf "Main.f%d((%s), (%s))" f a b) );
      ]

let cond ctx depth =
  let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
  let* a = expr ctx depth in
  let* b = expr ctx depth in
  return (Printf.sprintf "(%s) %s (%s)" a op b)

(* statements write only to locals; fresh loop counters guarantee
   termination *)
let rec stmts ctx ~fresh ~depth ~budget =
  if budget <= 0 then return []
  else
    let* s, fresh' = stmt ctx ~fresh ~depth in
    let* rest = stmts ctx ~fresh:fresh' ~depth ~budget:(budget - 1) in
    return (s :: rest)

and stmt ctx ~fresh ~depth =
  frequency
    [
      ( 4,
        let* v = var ctx in
        let* e = expr ctx 2 in
        return (Printf.sprintf "%s = (%s) & 1048575;" v e, fresh) );
      ( 2,
        let* c = cond ctx 1 in
        let* then_ = stmts ctx ~fresh:(fresh + 100) ~depth:(depth - 1) ~budget:2 in
        let* else_ = stmts ctx ~fresh:(fresh + 200) ~depth:(depth - 1) ~budget:2 in
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "%s = %s + 1;" v v, fresh)
        else
          return
            ( Printf.sprintf "if (%s) { %s } else { %s }" c
                (String.concat " " then_) (String.concat " " else_),
              fresh ) );
      ( 2,
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "%s = %s ^ 3;" v v, fresh)
        else
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 6 in
          let* body =
            stmts ctx ~fresh:(fresh + 1) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Printf.sprintf
                "var %s: int = 0; while (%s < %d) { %s %s = %s + 1; }" i i
                bound (String.concat " " body) i i,
              fresh + 1 ) );
      ( 1,
        let* e = expr ctx 1 in
        return (Printf.sprintf "print((%s) & 255);" e, fresh) );
    ]

let func_src idx n_callable =
  (* f_idx may call f0 .. f_{idx-1}: the call graph is acyclic *)
  let ctx = { vars = [ "a"; "b"; "t" ]; funcs = min idx n_callable } in
  let* body = stmts ctx ~fresh:0 ~depth:2 ~budget:3 in
  let* ret = expr ctx 2 in
  return
    (Printf.sprintf
       "static fun f%d(a: int, b: int): int { var t: int = (a ^ b) & 65535; %s return (%s) & 1048575; }"
       idx (String.concat " " body) ret)

let program =
  let* n_funcs = int_range 1 4 in
  let* funcs =
    flatten_l (List.init n_funcs (fun i -> func_src i n_funcs))
  in
  (* "k" is main's loop counter: random statements must never write
     it, so it is not exposed as a variable at all *)
  let main_ctx = { vars = [ "acc" ]; funcs = n_funcs } in
  let* main_body = stmts main_ctx ~fresh:1000 ~depth:2 ~budget:4 in
  return
    (Printf.sprintf
       {|class Main {
  %s
  static fun main(n: int): int {
    var acc: int = n;
    var k: int = 0;
    while (k < 8) {
      %s
      acc = (acc + Main.f0(acc, k)) & 1048575;
      k = k + 1;
    }
    print(acc);
    return acc;
  }
}|}
       (String.concat "\n  " funcs)
       (String.concat " " main_body))

let arbitrary_program =
  QCheck.make ~print:(fun s -> s) program
