(* Optimizer passes: local correctness checks plus semantic preservation
   on the benchmark programs. *)

module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* run a source program with a custom pass pipeline applied after the
   standard frontend *)
let run_with_passes passes src args =
  let classes = Helpers.compile src in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let funcs = List.map (Opt.Pass.run_all passes) funcs in
  let prog = Helpers.link classes funcs in
  Helpers.run_main prog args

let count_instrs (f : Lir.func) p =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      if b.Lir.role <> Lir.Dead then
        Array.iter (fun i -> if p i then incr n) b.Lir.instrs)
    f.Lir.blocks;
  !n

let func_of src name =
  let funcs = Bytecode.To_lir.program_to_funcs (Helpers.compile src) in
  List.find
    (fun (f : Lir.func) -> Lir.string_of_method_ref f.Lir.fname = name)
    funcs

(* -------- constant folding -------- *)

let constfold_folds () =
  let src =
    "class Main { static fun main(n: int): int { var a: int = 3 * 4; var b: \
     int = a + 5; return b; } }"
  in
  let f =
    Opt.Pass.run_all
      [ Opt.Constfold.pass; Opt.Copyprop.pass; Opt.Constfold.pass; Opt.Dce.pass ]
      (func_of src "Main.main")
  in
  (* after folding + dce the function should contain no Binop at all *)
  let binops = count_instrs f (function Lir.Binop _ -> true | _ -> false) in
  check_int "all arithmetic folded" 0 binops

let constfold_keeps_trap () =
  let src =
    "class Main { static fun main(n: int): int { var z: int = 0; return 10 / \
     z; } }"
  in
  let f =
    Opt.Pass.run_all [ Opt.Constfold.pass; Opt.Dce.pass ] (func_of src "Main.main")
  in
  (* the division by a known zero must NOT be folded away or removed *)
  let divs =
    count_instrs f (function Lir.Binop (_, Lir.Div, _, _) -> true | _ -> false)
  in
  check_int "trap preserved" 1 divs

let constfold_branch () =
  let src =
    "class Main { static fun main(n: int): int { if (1 < 2) { return 7; } \
     return 8; } }"
  in
  let f = Opt.Pass.run_all [ Opt.Constfold.pass ] (func_of src "Main.main") in
  (* the constant condition becomes a goto; block 8 becomes unreachable *)
  let has_if =
    Ir.Vec.exists
      (fun (b : Lir.block) ->
        b.Lir.role <> Lir.Dead
        && match b.Lir.term with Lir.If _ -> true | _ -> false)
      f.Lir.blocks
  in
  check_bool "constant branch eliminated" false has_if

(* -------- DCE -------- *)

let dce_removes_dead () =
  let src =
    "class Main { static fun main(n: int): int { var dead: int = n * 977; \
     var live: int = n + 1; return live; } }"
  in
  let before = func_of src "Main.main" in
  let muls =
    count_instrs before (function
      | Lir.Binop (_, Lir.Mul, _, _) -> true
      | _ -> false)
  in
  check_int "dead multiply present before" 1 muls;
  let f = Opt.Pass.run_all [ Opt.Copyprop.pass; Opt.Dce.pass ] before in
  let muls2 =
    count_instrs f (function
      | Lir.Binop (_, Lir.Mul, _, _) -> true
      | _ -> false)
  in
  check_int "dead multiply removed" 0 muls2

let dce_keeps_effects () =
  let src =
    "class B { var v: int; } class Main { static fun main(n: int): int { var \
     b: B = new B; b.v = 5; return 0; } }"
  in
  let f =
    Opt.Pass.run_all [ Opt.Copyprop.pass; Opt.Dce.pass ] (func_of src "Main.main")
  in
  check_int "store kept" 1
    (count_instrs f (function Lir.Put_field _ -> true | _ -> false));
  check_int "allocation kept" 1
    (count_instrs f (function Lir.New_object _ -> true | _ -> false))

(* -------- semantic preservation over the whole suite -------- *)

let passes_preserve (b : Workloads.Suite.benchmark) () =
  let classes = Workloads.Suite.compile b in
  let raw = Bytecode.To_lir.program_to_funcs classes in
  let baseline =
    Vm.Interp.run (Helpers.link classes raw) ~entry:Workloads.Suite.entry
      ~args:[ 1 ] Vm.Interp.null_hooks
  in
  let optimized =
    List.map
      (Opt.Pass.run_all (Opt.Pipeline.front_passes @ Opt.Pipeline.back_passes))
      raw
  in
  let res =
    Vm.Interp.run
      (Helpers.link classes optimized)
      ~entry:Workloads.Suite.entry ~args:[ 1 ] Vm.Interp.null_hooks
  in
  Alcotest.(check string) "output" baseline.Vm.Interp.output res.Vm.Interp.output;
  check_bool "optimizer did not slow the program down" true
    (res.Vm.Interp.instructions <= baseline.Vm.Interp.instructions)

(* -------- inlining -------- *)

let inline_correct () =
  let src =
    {|
    class Main {
      static fun add3(x: int): int { return x + 3; }
      static fun main(n: int): int { return Main.add3(n) * Main.add3(n + 1); }
    }
  |}
  in
  let classes = Helpers.compile src in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let inlined = Opt.Inline.run_heuristic funcs in
  let main_f =
    List.find
      (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main")
      inlined
  in
  check_int "no calls remain" 0
    (count_instrs main_f (function Lir.Call _ -> true | _ -> false));
  let res = Helpers.run_main (Helpers.link classes inlined) [ 5 ] in
  check_int "value preserved" 72 (Option.get res.Vm.Interp.return_value)

let inline_respects_recursion () =
  let funcs = Bytecode.To_lir.program_to_funcs (Helpers.compile Helpers.fib_src) in
  let inlined = Opt.Inline.run_heuristic funcs in
  let fib =
    List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "fib") inlined
  in
  check_bool "recursive callee untouched inside itself" true
    (count_instrs fib (function Lir.Call _ -> true | _ -> false) >= 2)

(* -------- regalloc & scheduling -------- *)

let regalloc_sound () =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let funcs = Bytecode.To_lir.program_to_funcs (Workloads.Suite.compile b) in
      List.iter
        (fun f ->
          let a = Opt.Regalloc.allocate f in
          check_bool
            (Printf.sprintf "no interference in %s"
               (Lir.string_of_method_ref f.Lir.fname))
            true
            (Opt.Regalloc.interference_free f a))
        funcs)
    [ Workloads.Suite.find "jess"; Workloads.Suite.find "javac" ]

let regalloc_spills_when_tight () =
  let f =
    func_of
      {|class Main { static fun main(n: int): int {
        var a: int = n + 1; var b: int = n + 2; var c: int = n + 3;
        var d: int = n + 4; var e: int = n + 5; var f: int = n + 6;
        return ((a * b) + (c * d)) + ((e * f) + (a * c)) + (b * d) + (e * a); } }|}
      "Main.main"
  in
  let a = Opt.Regalloc.allocate ~n_phys:3 f in
  check_bool "spills happen with 3 registers" true (a.Opt.Regalloc.n_spills > 0);
  check_bool "still interference free" true (Opt.Regalloc.interference_free f a)

let schedule_preserves () =
  let src = Helpers.loop_src in
  let plain = Helpers.exec src [ 321 ] in
  let scheduled = run_with_passes [ Opt.Schedule.pass ] src [ 321 ] in
  Alcotest.(check string)
    "scheduling preserves output" plain.Vm.Interp.output
    scheduled.Vm.Interp.output

(* -------- yieldpoints -------- *)

let yieldpoints_placed () =
  let f = func_of Helpers.loop_src "Main.main" in
  let g = Opt.Yieldpoints.run f in
  let entry_yps =
    count_instrs g (function Lir.Yieldpoint Lir.Yp_entry -> true | _ -> false)
  in
  let backedge_yps =
    count_instrs g (function
      | Lir.Yieldpoint Lir.Yp_backedge -> true
      | _ -> false)
  in
  check_int "one entry yieldpoint" 1 entry_yps;
  check_int "one per backedge" (List.length (Ir.Loops.retreating_edges f))
    backedge_yps;
  let stripped = Opt.Yieldpoints.strip g in
  check_int "strip removes all" 0
    (count_instrs stripped (function Lir.Yieldpoint _ -> true | _ -> false))


(* -------- devirtualization -------- *)

let poly_src =
  {|
  class A { fun f(x: int): int { return x + 1; } }
  class B extends A { fun f(x: int): int { return x * 2; } }
  class Main {
    static fun main(n: int): int {
      var a: A = new A;
      var b: A = new B;
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        var o: A = a;
        if ((i & 3) == 0) { o = b; }
        acc = (acc + o.f(i)) & 65535;
        i = i + 1;
      }
      print(acc);
      return acc;
    }
  }
|}

let find_virtual_site (f : Lir.func) =
  let at = ref None in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then
      Array.iteri
        (fun i instr ->
          match instr with
          | Lir.Call { kind = Lir.Virtual; _ } -> at := Some (l, i)
          | _ -> ())
        b.Lir.instrs
  done;
  Option.get !at

let devirt_preserves () =
  let classes = Helpers.compile poly_src in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let baseline = Helpers.run_main (Helpers.link classes funcs) [ 200 ] in
  let main_f =
    List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main") funcs
  in
  let callee =
    List.find
      (fun (f : Lir.func) ->
        Lir.string_of_method_ref f.Lir.fname = "A.f")
      funcs
  in
  (* predict the MAJORITY class (A, 75%) and inline its implementation *)
  let main' =
    Opt.Devirt.guarded_inline main_f ~at:(find_virtual_site main_f)
      ~predicted:"A" ~callee
  in
  let funcs' =
    List.map
      (fun (f : Lir.func) -> if f.Lir.fname.Lir.mname = "main" then main' else f)
      funcs
  in
  let res = Helpers.run_main (Helpers.link classes funcs') [ 200 ] in
  Alcotest.(check string)
    "semantics preserved (B receivers take the slow path)"
    baseline.Vm.Interp.output res.Vm.Interp.output;
  check_bool "instance test executed" true
    (res.Vm.Interp.instructions > 0)

let devirt_guard_only () =
  let classes = Helpers.compile poly_src in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let baseline = Helpers.run_main (Helpers.link classes funcs) [ 64 ] in
  let main_f =
    List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main") funcs
  in
  (* predicting the WRONG dominant class must still be correct: every call
     takes the slow virtual path *)
  let main' =
    Opt.Devirt.guard_call main_f ~at:(find_virtual_site main_f) ~predicted:"B"
      ~impl:"B" ()
  in
  let funcs' =
    List.map
      (fun (f : Lir.func) -> if f.Lir.fname.Lir.mname = "main" then main' else f)
      funcs
  in
  let res = Helpers.run_main (Helpers.link classes funcs') [ 64 ] in
  Alcotest.(check string)
    "guard with minority prediction still correct" baseline.Vm.Interp.output
    res.Vm.Interp.output

let devirt_rejects_static () =
  let funcs = Bytecode.To_lir.program_to_funcs (Helpers.compile Helpers.fib_src) in
  let main_f =
    List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main") funcs
  in
  let at = ref None in
  for l = 0 to Lir.num_blocks main_f - 1 do
    let b = Lir.block main_f l in
    Array.iteri
      (fun i instr ->
        match instr with Lir.Call _ -> at := Some (l, i) | _ -> ())
      b.Lir.instrs
  done;
  check_bool "static call rejected" true
    (try
       ignore
         (Opt.Devirt.guard_call main_f ~at:(Option.get !at) ~predicted:"Main" ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "opt.constfold",
      [
        Alcotest.test_case "folds arithmetic" `Quick constfold_folds;
        Alcotest.test_case "keeps trapping division" `Quick constfold_keeps_trap;
        Alcotest.test_case "folds constant branches" `Quick constfold_branch;
      ] );
    ( "opt.dce",
      [
        Alcotest.test_case "removes dead code" `Quick dce_removes_dead;
        Alcotest.test_case "keeps side effects" `Quick dce_keeps_effects;
      ] );
    ( "opt.preservation",
      List.map
        (fun (b : Workloads.Suite.benchmark) ->
          Alcotest.test_case b.Workloads.Suite.bname `Quick (passes_preserve b))
        Workloads.Suite.all );
    ( "opt.inline",
      [
        Alcotest.test_case "inlines and preserves" `Quick inline_correct;
        Alcotest.test_case "recursion untouched" `Quick inline_respects_recursion;
      ] );
    ( "opt.backend",
      [
        Alcotest.test_case "regalloc sound" `Quick regalloc_sound;
        Alcotest.test_case "devirt preserves semantics" `Quick devirt_preserves;
        Alcotest.test_case "devirt guard-only correct" `Quick devirt_guard_only;
        Alcotest.test_case "devirt rejects static calls" `Quick
          devirt_rejects_static;
        Alcotest.test_case "regalloc spills" `Quick regalloc_spills_when_tight;
        Alcotest.test_case "schedule preserves" `Quick schedule_preserves;
        Alcotest.test_case "yieldpoints placed" `Quick yieldpoints_placed;
      ] );
  ]
