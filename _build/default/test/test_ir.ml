(* Unit tests for the ir library: Vec, CFG queries, dominators, loop
   analysis, structural editing, and the verifier. *)

module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -------- Vec -------- *)

let vec_basics () =
  let v = Ir.Vec.create () in
  check_int "empty" 0 (Ir.Vec.length v);
  for i = 0 to 99 do
    check_int "push index" i (Ir.Vec.push v (i * 2))
  done;
  check_int "length" 100 (Ir.Vec.length v);
  check_int "get" 84 (Ir.Vec.get v 42);
  Ir.Vec.set v 42 7;
  check_int "set" 7 (Ir.Vec.get v 42);
  check_int "fold = list fold"
    (List.fold_left ( + ) 0 (Ir.Vec.to_list v))
    (Ir.Vec.fold_left ( + ) 0 v);
  let c = Ir.Vec.copy v in
  Ir.Vec.set c 0 999;
  check_int "copy is independent" 0 (Ir.Vec.get v 0)

let vec_bounds () =
  let v = Ir.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 3 out of bounds (len 3)") (fun () ->
      ignore (Ir.Vec.get v 3));
  Alcotest.check_raises "negative"
    (Invalid_argument "Vec: index -1 out of bounds (len 3)") (fun () ->
      ignore (Ir.Vec.get v (-1)))

(* -------- small CFG fixtures -------- *)

(* diamond:  0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> ret *)
let diamond () =
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "d" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  let l3 = Ir.Build.new_block b in
  Ir.Build.set_term b l0
    (Lir.If { cond = Lir.Reg 0; if_true = l1; if_false = l2 });
  Ir.Build.set_term b l1 (Lir.Goto l3);
  Ir.Build.set_term b l2 (Lir.Goto l3);
  Ir.Build.set_term b l3 (Lir.Return None);
  Ir.Build.finish b ~entry:l0

(* loop: 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 (backedge) ; 3 -> ret *)
let loop () =
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "l" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  let l3 = Ir.Build.new_block b in
  Ir.Build.set_term b l0 (Lir.Goto l1);
  Ir.Build.set_term b l1
    (Lir.If { cond = Lir.Reg 0; if_true = l2; if_false = l3 });
  Ir.Build.set_term b l2 (Lir.Goto l1);
  Ir.Build.set_term b l3 (Lir.Return None);
  Ir.Build.finish b ~entry:l0

let cfg_queries () =
  let f = diamond () in
  Alcotest.(check (list int)) "succs of entry" [ 1; 2 ] (Ir.Cfg.succs f 0);
  let preds = Ir.Cfg.predecessors f in
  Alcotest.(check (list int)) "preds of join" [ 1; 2 ] preds.(3);
  check_int "rpo covers all" 4 (List.length (Ir.Cfg.reverse_postorder f));
  check_bool "rpo starts at entry" true
    (List.hd (Ir.Cfg.reverse_postorder f) = 0);
  check_int "edges" 4 (List.length (Ir.Cfg.edges f))

let rpo_respects_order () =
  let f = loop () in
  let rpo = Ir.Cfg.reverse_postorder f in
  let pos l =
    let rec go i = function
      | [] -> failwith "missing"
      | x :: rest -> if x = l then i else go (i + 1) rest
    in
    go 0 rpo
  in
  check_bool "entry before header" true (pos 0 < pos 1);
  check_bool "header before exit" true (pos 1 < pos 3)

let dominators () =
  let f = diamond () in
  let dom = Ir.Dom.compute f in
  check_bool "entry dominates all" true
    (List.for_all (fun l -> Ir.Dom.dominates dom 0 l) [ 0; 1; 2; 3 ]);
  check_bool "branch does not dominate join" false (Ir.Dom.dominates dom 1 3);
  Alcotest.(check (option int)) "idom of join" (Some 0) (Ir.Dom.idom dom 3);
  Alcotest.(check (option int)) "entry has no idom" None (Ir.Dom.idom dom 0)

let loop_analysis () =
  let f = loop () in
  Alcotest.(check (list (pair int int)))
    "retreating edges" [ (2, 1) ] (Ir.Loops.retreating_edges f);
  Alcotest.(check (list (pair int int)))
    "natural backedges" [ (2, 1) ]
    (Ir.Loops.natural_backedges f);
  check_bool "reducible" true (Ir.Loops.is_reducible f);
  Alcotest.(check (list int)) "headers" [ 1 ] (Ir.Loops.loop_headers f);
  let d = diamond () in
  Alcotest.(check (list (pair int int)))
    "diamond has no backedges" []
    (Ir.Loops.retreating_edges d)

let self_loop_detected () =
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "s" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  Ir.Build.set_term b l0 (Lir.Goto l1);
  Ir.Build.set_term b l1
    (Lir.If { cond = Lir.Reg 0; if_true = l1; if_false = l2 });
  Ir.Build.set_term b l2 (Lir.Return None);
  let f = Ir.Build.finish b ~entry:l0 in
  Alcotest.(check (list (pair int int)))
    "self loop" [ (1, 1) ] (Ir.Loops.retreating_edges f)

let irreducible_flagged () =
  (* 0 -> 1,2 ; 1 -> 2,3 ; 2 -> 1,3 — classic irreducible pair *)
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "i" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  let l3 = Ir.Build.new_block b in
  Ir.Build.set_term b l0
    (Lir.If { cond = Lir.Reg 0; if_true = l1; if_false = l2 });
  Ir.Build.set_term b l1
    (Lir.If { cond = Lir.Reg 0; if_true = l2; if_false = l3 });
  Ir.Build.set_term b l2
    (Lir.If { cond = Lir.Reg 0; if_true = l1; if_false = l3 });
  Ir.Build.set_term b l3 (Lir.Return None);
  let f = Ir.Build.finish b ~entry:l0 in
  check_bool "irreducible" false (Ir.Loops.is_reducible f)

let edge_split () =
  let f = loop () in
  let n_before = Lir.num_blocks f in
  let fresh =
    Ir.Edit.split_edge f ~src:2 ~dst:1 ~role:Lir.Check_block ~instrs:[]
  in
  check_int "one new block" (n_before + 1) (Lir.num_blocks f);
  Alcotest.(check (list int)) "src now targets fresh" [ fresh ] (Ir.Cfg.succs f 2);
  Alcotest.(check (list int)) "fresh targets dst" [ 1 ] (Ir.Cfg.succs f fresh);
  Ir.Verify.check_exn f;
  Alcotest.check_raises "missing edge rejected"
    (Invalid_argument "Edit.split_edge: no edge 0 -> 3") (fun () ->
      ignore (Ir.Edit.split_edge f ~src:0 ~dst:3 ~role:Lir.Orig ~instrs:[]))

let insert_and_filter () =
  let f = loop () in
  Ir.Edit.prepend f 1 [ Lir.Yieldpoint Lir.Yp_entry ];
  Ir.Edit.insert_before f 1 1 [ Lir.Move (0, Lir.Imm 5) ];
  check_int "two instrs" 2 (Array.length (Lir.block f 1).Lir.instrs);
  Ir.Edit.filter_instrs f 1 (function Lir.Yieldpoint _ -> false | _ -> true);
  check_int "yieldpoint removed" 1 (Array.length (Lir.block f 1).Lir.instrs)

let clone_blocks () =
  let f = loop () in
  let mapping = Ir.Edit.clone_blocks f ~role:Lir.Dup (fun _ -> true) in
  check_int "four clones" 4 (List.length mapping);
  let dup_of l = List.assoc l mapping in
  Alcotest.(check (list int))
    "clone of header branches to clones"
    [ dup_of 2; dup_of 3 ]
    (Ir.Cfg.succs f (dup_of 1));
  check_bool "clones unreachable from entry" false
    (Ir.Cfg.reachable f).(dup_of 0)

let remove_unreachable () =
  let f = loop () in
  ignore (Ir.Edit.clone_blocks f ~role:Lir.Dup (fun _ -> true));
  let removed = Ir.Cfg.remove_unreachable f in
  check_int "clones removed" 4 removed;
  Ir.Verify.check_exn f

let verifier_catches () =
  let mk term =
    let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "v" } ~n_params:1 () in
    let l0 = Ir.Build.new_block b in
    Ir.Build.set_term b l0 term;
    Ir.Build.finish b ~entry:l0
  in
  let bad = mk (Lir.Goto 7) in
  check_bool "bad successor" false (Ir.Verify.check bad = []);
  let ok = mk (Lir.Return None) in
  check_bool "fine" true (Ir.Verify.check ok = []);
  let bad_reg = mk (Lir.Return (Some (Lir.Reg 99))) in
  check_bool "register out of range" false (Ir.Verify.check bad_reg = [])

let verifier_rejects_check_in_dup () =
  let f = loop () in
  let b1 = Lir.block f 2 in
  Lir.set_block f 2
    { b1 with Lir.role = Lir.Dup; term = Lir.Check { on_sample = 1; fall = 1 } };
  check_bool "check inside dup rejected" false (Ir.Verify.check f = [])

let reach_directions () =
  let f = diamond () in
  let from1 = Ir.Cfg.reachable_from f [ 1 ] in
  check_bool "1 reaches 3" true from1.(3);
  check_bool "1 does not reach 2" false from1.(2);
  let to3 = Ir.Cfg.reaching_to f [ 3 ] in
  check_bool "everything reaches 3" true (to3.(0) && to3.(1) && to3.(2))

let printer_smoke () =
  let f = loop () in
  let s = Ir.Pp.func_to_string f in
  check_bool "mentions func name" true (contains s "T.l");
  check_bool "mentions goto" true (contains s "goto");
  check_bool "mentions return" true (contains s "return")

let suite =
  [
    ( "ir.vec",
      [
        Alcotest.test_case "basics" `Quick vec_basics;
        Alcotest.test_case "bounds" `Quick vec_bounds;
      ] );
    ( "ir.cfg",
      [
        Alcotest.test_case "queries" `Quick cfg_queries;
        Alcotest.test_case "rpo order" `Quick rpo_respects_order;
        Alcotest.test_case "reachability" `Quick reach_directions;
        Alcotest.test_case "remove unreachable" `Quick remove_unreachable;
      ] );
    ("ir.dom", [ Alcotest.test_case "dominators on diamond" `Quick dominators ]);
    ( "ir.loops",
      [
        Alcotest.test_case "loop backedges" `Quick loop_analysis;
        Alcotest.test_case "self loop" `Quick self_loop_detected;
        Alcotest.test_case "irreducible" `Quick irreducible_flagged;
      ] );
    ( "ir.edit",
      [
        Alcotest.test_case "split edge" `Quick edge_split;
        Alcotest.test_case "insert/filter" `Quick insert_and_filter;
        Alcotest.test_case "clone blocks" `Quick clone_blocks;
      ] );
    ( "ir.verify",
      [
        Alcotest.test_case "catches structural errors" `Quick verifier_catches;
        Alcotest.test_case "check in dup rejected" `Quick
          verifier_rejects_check_in_dup;
      ] );
    ("ir.pp", [ Alcotest.test_case "printer smoke" `Quick printer_smoke ]);
  ]
