(* Bytecode layer: classfile model, verifier, and the stack-to-register
   translation. *)

module Bc = Bytecode.Bc
module Classfile = Bytecode.Classfile
module Bverify = Bytecode.Bverify
module To_lir = Bytecode.To_lir
module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let meth ?(static = true) ?(n_args = 0) ?(returns = false) ?(max_locals = 4)
    code =
  {
    Classfile.mname = "m";
    static;
    n_args;
    returns;
    max_locals;
    code = Array.of_list code;
  }

(* -------- verifier -------- *)

let verify_ok () =
  let m =
    meth ~returns:true [ Bc.Const 1; Bc.Const 2; Bc.Binop Lir.Add; Bc.Return_value ]
  in
  check_int "max stack" 2 (Bverify.max_stack m)

let verify_underflow () =
  let m = meth [ Bc.Pop; Bc.Return ] in
  check_bool "underflow rejected" true (Result.is_error (Bverify.check_method m))

let verify_falls_off () =
  let m = meth [ Bc.Const 1; Bc.Pop ] in
  check_bool "fall off end rejected" true
    (Result.is_error (Bverify.check_method m))

let verify_merge_mismatch () =
  (* branch pushes on one path only, then merges *)
  let m =
    meth ~returns:true
      [
        Bc.Const 0;
        Bc.If (Bc.Ceq, 3);
        Bc.Const 1;
        (* index 3: reached with depth 0 from the branch, 1 by fall-through *)
        Bc.Const 2;
        Bc.Return_value;
      ]
  in
  check_bool "inconsistent merge rejected" true
    (Result.is_error (Bverify.check_method m))

let verify_bad_target () =
  let m = meth [ Bc.Goto 99 ] in
  check_bool "jump out of range" true (Result.is_error (Bverify.check_method m))

let verify_bad_local () =
  let m = meth ~max_locals:2 [ Bc.Load 5; Bc.Pop; Bc.Return ] in
  check_bool "local out of range" true
    (Result.is_error (Bverify.check_method m))

let verify_wrong_return () =
  let m = meth ~returns:true [ Bc.Return ] in
  check_bool "void return in value method" true
    (Result.is_error (Bverify.check_method m));
  let m2 = meth ~returns:false [ Bc.Const 1; Bc.Return_value ] in
  check_bool "value return in void method" true
    (Result.is_error (Bverify.check_method m2))

let verify_loop_ok () =
  (* local 0 = counter; loop until 0 *)
  let m =
    meth ~n_args:1 ~max_locals:1
      [
        Bc.Load 0;
        Bc.If (Bc.Ceq, 6);
        Bc.Load 0;
        Bc.Const 1;
        Bc.Binop Lir.Sub;
        Bc.Store 0;
        (* 6 *)
        Bc.Return;
      ]
  in
  (* note: no backward jump here; now one with a backward jump *)
  check_bool "ok" true (Result.is_ok (Bverify.check_method m));
  let looping =
    meth ~n_args:1 ~max_locals:1
      [
        (* 0 *) Bc.Load 0;
        (* 1 *) Bc.If (Bc.Ceq, 7);
        (* 2 *) Bc.Load 0;
        (* 3 *) Bc.Const 1;
        (* 4 *) Bc.Binop Lir.Sub;
        (* 5 *) Bc.Store 0;
        (* 6 *) Bc.Goto 0;
        (* 7 *) Bc.Return;
      ]
  in
  check_bool "loop verifies" true (Result.is_ok (Bverify.check_method looping))

(* -------- stack effects -------- *)

let stack_effects () =
  check_bool "const" true (Bc.stack_effect (Bc.Const 3) = (0, 1));
  check_bool "binop" true (Bc.stack_effect (Bc.Binop Lir.Add) = (2, 1));
  check_bool "array store" true (Bc.stack_effect Bc.Array_store = (3, 0));
  check_bool "invoke virtual pops receiver" true
    (Bc.stack_effect
       (Bc.Invoke_virtual ({ Lir.mclass = "C"; mname = "m" }, 2, true))
    = (3, 1))

(* -------- classfile model -------- *)

let prog_with_inheritance =
  [
    {
      Classfile.cname = "A";
      super = None;
      fields = [ "x"; "y" ];
      static_fields = [ "g" ];
      methods = [ meth ~static:false [ Bc.Return ] ];
    };
    {
      Classfile.cname = "B";
      super = Some "A";
      fields = [ "z" ];
      static_fields = [];
      methods = [];
    };
  ]

let classfile_model () =
  let b = Option.get (Classfile.find_class prog_with_inheritance "B") in
  Alcotest.(check (list (pair string string)))
    "layout base-first"
    [ ("A", "x"); ("A", "y"); ("B", "z") ]
    (Classfile.instance_layout prog_with_inheritance b);
  check_bool "resolve inherited method" true
    (Classfile.resolve_method prog_with_inheritance ~cls:"B" ~name:"m" <> None);
  check_bool "unknown method" true
    (Classfile.resolve_method prog_with_inheritance ~cls:"B" ~name:"nope" = None)

(* -------- translation -------- *)

let translate_and_run code ~args ~returns =
  let m = meth ~n_args:(List.length args) ~returns ~max_locals:4 code in
  let cls =
    {
      Classfile.cname = "T";
      super = None;
      fields = [];
      static_fields = [];
      methods = [ m ];
    }
  in
  let funcs = To_lir.program_to_funcs [ cls ] in
  List.iter Ir.Verify.check_exn funcs;
  let prog = Vm.Program.link [ cls ] ~funcs in
  Vm.Interp.run prog ~entry:{ Lir.mclass = "T"; mname = "m" } ~args
    Vm.Interp.null_hooks

let tolir_arith () =
  let res =
    translate_and_run ~args:[ 20; 22 ] ~returns:true
      [ Bc.Load 0; Bc.Load 1; Bc.Binop Lir.Add; Bc.Return_value ]
  in
  check_int "20+22" 42 (Option.get res.Vm.Interp.return_value)

let tolir_branch () =
  let code =
    [
      Bc.Load 0;
      Bc.Load 1;
      Bc.If_cmp (Bc.Clt, 5);
      (* not less: return 0 *)
      Bc.Const 0;
      Bc.Return_value;
      (* 5: less: return 1 *)
      Bc.Const 1;
      Bc.Return_value;
    ]
  in
  let r1 = translate_and_run ~args:[ 1; 2 ] ~returns:true code in
  check_int "1 < 2" 1 (Option.get r1.Vm.Interp.return_value);
  let r2 = translate_and_run ~args:[ 3; 2 ] ~returns:true code in
  check_int "3 < 2" 0 (Option.get r2.Vm.Interp.return_value)

let tolir_swap_dup () =
  let res =
    translate_and_run ~args:[ 5; 9 ] ~returns:true
      [ Bc.Load 0; Bc.Load 1; Bc.Swap; Bc.Binop Lir.Sub; Bc.Return_value ]
  in
  (* swap makes it 9 - 5 *)
  check_int "swap then sub" 4 (Option.get res.Vm.Interp.return_value);
  let res2 =
    translate_and_run ~args:[ 6 ] ~returns:true
      [ Bc.Load 0; Bc.Dup; Bc.Binop Lir.Mul; Bc.Return_value ]
  in
  check_int "dup then mul" 36 (Option.get res2.Vm.Interp.return_value)

let tolir_switch () =
  let code =
    [
      Bc.Load 0;
      Bc.Switch ([ (1, 3); (2, 5) ], 7);
      Bc.Return;
      (* unreachable pad *)
      (* 3 *) Bc.Const 10;
      Bc.Return_value;
      (* 5 *) Bc.Const 20;
      Bc.Return_value;
      (* 7 *) Bc.Const 30;
      Bc.Return_value;
    ]
  in
  let run v =
    Option.get
      (translate_and_run ~args:[ v ] ~returns:true code).Vm.Interp.return_value
  in
  check_int "case 1" 10 (run 1);
  check_int "case 2" 20 (run 2);
  check_int "default" 30 (run 99)

let tolir_unreachable_skipped () =
  (* dead code after an unconditional return translates fine *)
  let res =
    translate_and_run ~args:[] ~returns:true
      [ Bc.Const 7; Bc.Return_value; Bc.Const 8; Bc.Return_value ]
  in
  check_int "first return wins" 7 (Option.get res.Vm.Interp.return_value)

let tolir_call_sites () =
  (* invoke instruction index is recorded as the LIR call site *)
  let callee = meth ~returns:true [ Bc.Const 9; Bc.Return_value ] in
  let caller =
    meth ~returns:true
      [
        Bc.Invoke_static ({ Lir.mclass = "T"; mname = "callee" }, 0, true);
        Bc.Return_value;
      ]
  in
  let cls =
    {
      Classfile.cname = "T";
      super = None;
      fields = [];
      static_fields = [];
      methods =
        [ { caller with Classfile.mname = "m" };
          { callee with Classfile.mname = "callee" } ];
    }
  in
  let funcs = To_lir.program_to_funcs [ cls ] in
  let caller_f =
    List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "m") funcs
  in
  let sites = ref [] in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      Array.iter
        (function Lir.Call { site; _ } -> sites := site :: !sites | _ -> ())
        b.Lir.instrs)
    caller_f.Lir.blocks;
  Alcotest.(check (list int)) "site is bytecode index" [ 0 ] !sites

let suite =
  [
    ( "bytecode.verify",
      [
        Alcotest.test_case "accepts straight-line" `Quick verify_ok;
        Alcotest.test_case "stack underflow" `Quick verify_underflow;
        Alcotest.test_case "fall off end" `Quick verify_falls_off;
        Alcotest.test_case "merge mismatch" `Quick verify_merge_mismatch;
        Alcotest.test_case "bad jump target" `Quick verify_bad_target;
        Alcotest.test_case "bad local slot" `Quick verify_bad_local;
        Alcotest.test_case "wrong return kind" `Quick verify_wrong_return;
        Alcotest.test_case "loops verify" `Quick verify_loop_ok;
      ] );
    ( "bytecode.model",
      [
        Alcotest.test_case "stack effects" `Quick stack_effects;
        Alcotest.test_case "layout and resolution" `Quick classfile_model;
      ] );
    ( "bytecode.to_lir",
      [
        Alcotest.test_case "arithmetic" `Quick tolir_arith;
        Alcotest.test_case "branches" `Quick tolir_branch;
        Alcotest.test_case "swap and dup" `Quick tolir_swap_dup;
        Alcotest.test_case "switch" `Quick tolir_switch;
        Alcotest.test_case "unreachable code skipped" `Quick
          tolir_unreachable_skipped;
        Alcotest.test_case "call sites recorded" `Quick tolir_call_sites;
      ] );
  ]
