(* VM semantics: arithmetic, heap, runtime traps, threads, timer/yield
   scheduling, cost accounting, i-cache. *)

module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let result src args = Option.get (Helpers.exec src args).Vm.Interp.return_value

let traps msg src args =
  Alcotest.test_case msg `Quick (fun () ->
      check_bool msg true
        (try
           ignore (Helpers.exec src args);
           false
         with Vm.Interp.Runtime_error _ -> true))

let arithmetic () =
  let p e = Printf.sprintf "class Main { static fun main(n: int): int { return %s; } }" e in
  check_int "neg div" (-3) (result (p "(0 - 7) / 2") []);
  check_int "neg rem" (-1) (result (p "(0 - 7) % 2") []);
  check_int "shr of negative" (-4) (result (p "(0 - 8) >> 1") []);
  check_int "logical not" 1
    (result
       "class Main { static fun main(n: int): int { var b: bool = !(n > 0); \
        if (b) { return 1; } return 0; } }"
       [ 0 ])

let trap_cases =
  [
    traps "division by zero"
      "class Main { static fun main(n: int): int { return 10 / n; } }" [ 0 ];
    traps "remainder by zero"
      "class Main { static fun main(n: int): int { return 10 % n; } }" [ 0 ];
    traps "null field read"
      "class B { var v: int; } class Main { static fun main(n: int): int { var b: B = null; return b.v; } }"
      [ 0 ];
    traps "array out of bounds"
      "class Main { static fun main(n: int): int { var a: int[] = new int[3]; return a[n]; } }"
      [ 5 ];
    traps "negative index"
      "class Main { static fun main(n: int): int { var a: int[] = new int[3]; return a[n]; } }"
      [ -1 ];
    traps "negative array length"
      "class Main { static fun main(n: int): int { var a: int[] = new int[n]; return a.length; } }"
      [ -2 ];
    traps "null virtual call"
      "class B { fun m(): int { return 1; } } class Main { static fun main(n: int): int { var b: B = null; return b.m(); } }"
      [ 0 ];
  ]

let fuel_exhaustion () =
  let src = "class Main { static fun main(n: int): int { while (true) { n = n + 1; } return n; } }" in
  check_bool "infinite loop hits fuel" true
    (try
       ignore (Helpers.exec ~fuel:100_000 src [ 0 ]);
       false
     with Vm.Interp.Runtime_error _ -> true)

let rand_deterministic () =
  let src =
    "class Main { static fun main(n: int): int { var s: int = 0; var i: int \
     = 0; while (i < 10) { s = s + rand(100); i = i + 1; } return s; } }"
  in
  check_int "same seed same stream" (result src [ 0 ]) (result src [ 0 ]);
  let r1 = Helpers.exec ~seed:1 src [ 0 ] and r2 = Helpers.exec ~seed:2 src [ 0 ] in
  check_bool "different seeds differ" true
    (r1.Vm.Interp.return_value <> r2.Vm.Interp.return_value)

let cycles_monotone_in_work () =
  let r1 = Helpers.exec Helpers.loop_src [ 10 ]
  and r2 = Helpers.exec Helpers.loop_src [ 1000 ] in
  check_bool "more iterations, more cycles" true
    (r2.Vm.Interp.cycles > r1.Vm.Interp.cycles);
  check_bool "cycles >= instructions" true
    (r2.Vm.Interp.cycles >= r2.Vm.Interp.instructions)

let thread_interleaving () =
  let src =
    {|
    class W {
      static var log: int;
      static var finished: int;
      static fun work(id: int) {
        var i: int = 0;
        while (i < 50000) { i = i + 1; }
        // completion order gets encoded in the log
        W.log = (W.log * 10) + id;
        W.finished = W.finished + 1;
      }
    }
    class Main {
      static fun main(n: int): int {
        spawn W.work(1);
        spawn W.work(2);
        spawn W.work(3);
        while (W.finished < 3) { yield(); }
        return W.log;
      }
    }
  |}
  in
  let r1 = result src [ 0 ] and r2 = result src [ 0 ] in
  check_int "deterministic interleaving" r1 r2;
  check_bool "all three finished" true (r1 >= 100)

let preemption_via_timer () =
  (* two compute-bound threads with NO explicit yields must still both
     finish: the timer sets the switch bit, yieldpoints act on it *)
  let src =
    {|
    class W {
      static var finished: int;
      static fun spin(id: int) {
        var i: int = 0;
        while (i < 200000) { i = i + 1; }
        W.finished = W.finished + 1;
      }
    }
    class Main {
      static fun main(n: int): int {
        spawn W.spin(1);
        spawn W.spin(2);
        while (W.finished < 2) { yield(); }
        return W.finished;
      }
    }
  |}
  in
  let res = Helpers.exec src [ 0 ] in
  check_int "both done" 2 (Option.get res.Vm.Interp.return_value);
  check_bool "timer forced switches" true
    (res.Vm.Interp.counters.Vm.Interp.thread_switches > 2)

let icache_model () =
  let ic = Vm.Icache.create ~lines:4 ~line_words:4 () in
  check_bool "first access misses" true (Vm.Icache.access ic 0);
  check_bool "same line hits" false (Vm.Icache.access ic 3);
  check_bool "next line misses" true (Vm.Icache.access ic 4);
  (* address 64 maps to line 16 mod 4 = 0: evicts line 0 *)
  check_bool "conflict evicts" true (Vm.Icache.access ic 64);
  check_bool "original line misses again" true (Vm.Icache.access ic 0);
  check_int "accesses" 5 (Vm.Icache.accesses ic);
  check_int "misses" 4 (Vm.Icache.misses ic)

let icache_in_vm () =
  let classes, funcs = Helpers.build Helpers.loop_src in
  let prog = Helpers.link classes funcs in
  let with_ic =
    Vm.Interp.run ~use_icache:true prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 500 ] Vm.Interp.null_hooks
  in
  let without =
    Vm.Interp.run ~use_icache:false prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 500 ] Vm.Interp.null_hooks
  in
  check_bool "icache misses counted" true (with_ic.Vm.Interp.icache_misses > 0);
  check_bool "misses cost cycles" true
    (with_ic.Vm.Interp.cycles > without.Vm.Interp.cycles);
  check_int "semantics unchanged"
    (Option.get without.Vm.Interp.return_value)
    (Option.get with_ic.Vm.Interp.return_value)

let linker_errors () =
  let classes = Helpers.compile Helpers.fib_src in
  check_bool "missing body rejected" true
    (try
       ignore (Vm.Program.link classes ~funcs:[]);
       false
     with Vm.Program.Link_error _ -> true)

let code_layout_puts_dup_last () =
  let classes, funcs = Helpers.build Helpers.loop_src in
  let spec = Core.Spec.call_edge in
  let funcs' =
    List.map (fun f -> (Core.Transform.full_dup spec f).Core.Transform.func) funcs
  in
  let prog = Vm.Program.link classes ~funcs:funcs' in
  Array.iter
    (fun (m : Vm.Program.meth) ->
      let f = m.Vm.Program.func in
      (* every dup block must be laid out after every orig/check block *)
      let max_hot = ref (-1) and min_dup = ref max_int in
      for l = 0 to Lir.num_blocks f - 1 do
        let b = Lir.block f l in
        let addr = m.Vm.Program.code_addr.(l) in
        match b.Lir.role with
        | Lir.Orig | Lir.Check_block -> if addr > !max_hot then max_hot := addr
        | Lir.Dup -> if addr < !min_dup then min_dup := addr
        | Lir.Dead -> ()
      done;
      if !min_dup < max_int then
        check_bool "dup after hot code" true (!min_dup > !max_hot))
    prog.Vm.Program.methods


let dcache_counts () =
  let src =
    {|
    class R { var a: int; var b: int; }
    class Main {
      static fun main(n: int): int {
        var rs: R[] = new R[64];
        var i: int = 0;
        while (i < 64) { rs[i] = new R; i = i + 1; }
        var acc: int = 0;
        var k: int = 0;
        while (k < n) {
          rs[k % 64].a = k;
          acc = acc + rs[k % 64].b;
          k = k + 1;
        }
        return acc;
      }
    }
  |}
  in
  let classes, funcs = Helpers.build src in
  let prog = Helpers.link classes funcs in
  let run use_dcache =
    Vm.Interp.run ~use_dcache prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 500 ] Vm.Interp.null_hooks
  in
  let with_dc = run true and without = run false in
  check_bool "dcache misses counted" true (with_dc.Vm.Interp.dcache_misses > 0);
  check_int "no dcache, no misses" 0 without.Vm.Interp.dcache_misses;
  check_bool "misses cost cycles" true
    (with_dc.Vm.Interp.cycles > without.Vm.Interp.cycles);
  check_int "semantics unchanged"
    (Option.get without.Vm.Interp.return_value)
    (Option.get with_dc.Vm.Interp.return_value)

let layout_override_semantics () =
  (* any permutation of a class's own fields must preserve behaviour *)
  let classes, funcs = Helpers.build Helpers.loop_src in
  let run layout_override =
    Helpers.run_main (Vm.Program.link ~layout_override classes ~funcs) [ 200 ]
  in
  let a = run [] and b = run [ ("Counter", [ "total" ]) ] in
  Alcotest.(check string) "same output" a.Vm.Interp.output b.Vm.Interp.output

let layout_override_inheritance () =
  (* reordering a base class's fields must not break subclass access *)
  let src =
    {|
    class Base { var x: int; var y: int; var z: int; }
    class Derived extends Base { var w: int; }
    class Main {
      static fun main(n: int): int {
        var d: Derived = new Derived;
        d.x = 1; d.y = 2; d.z = 3; d.w = 4;
        var b: Base = d;
        return (b.x * 1000) + (b.y * 100) + (b.z * 10) + d.w;
      }
    }
  |}
  in
  let classes, funcs = Helpers.build src in
  let run layout_override =
    Helpers.run_main (Vm.Program.link ~layout_override classes ~funcs) [ 0 ]
  in
  let plain = Option.get (run []).Vm.Interp.return_value in
  let reordered =
    Option.get
      (run [ ("Base", [ "z"; "x" ]) ]).Vm.Interp.return_value
  in
  check_int "values preserved under reorder" plain reordered;
  check_int "expected value" 1234 plain

let suite =
  [
    ( "vm.semantics",
      [
        Alcotest.test_case "arithmetic edge cases" `Quick arithmetic;
        Alcotest.test_case "fuel exhaustion" `Quick fuel_exhaustion;
        Alcotest.test_case "rand determinism" `Quick rand_deterministic;
        Alcotest.test_case "cycle accounting" `Quick cycles_monotone_in_work;
      ]
      @ trap_cases );
    ( "vm.threads",
      [
        Alcotest.test_case "deterministic interleaving" `Quick
          thread_interleaving;
        Alcotest.test_case "timer preemption" `Quick preemption_via_timer;
      ] );
    ( "vm.icache",
      [
        Alcotest.test_case "cache model" `Quick icache_model;
        Alcotest.test_case "cache in the VM" `Quick icache_in_vm;
        Alcotest.test_case "dcache counts" `Quick dcache_counts;
        Alcotest.test_case "layout override semantics" `Quick
          layout_override_semantics;
        Alcotest.test_case "layout override + inheritance" `Quick
          layout_override_inheritance;
      ] );
    ( "vm.program",
      [
        Alcotest.test_case "link errors" `Quick linker_errors;
        Alcotest.test_case "layout: dup code is cold" `Quick
          code_layout_puts_dup_last;
      ] );
  ]
