test/test_bytecode.ml: Alcotest Array Bytecode Ir List Option Result Vm
