test/test_workloads.ml: Alcotest Bytecode Ir List Opt Printf Vm Workloads
