test/gen_jasm.ml: List Printf QCheck String
