test/test_vm.ml: Alcotest Array Core Helpers Ir List Option Printf Vm
