test/test_sampler.ml: Alcotest Core Fun List Printf
