test/test_props.ml: Array Bytecode Core Float Fun Gen_jasm Ir Jasm List Opt Printf Profiles QCheck QCheck_alcotest String Vm
