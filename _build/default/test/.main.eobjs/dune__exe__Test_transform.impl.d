test/test_transform.ml: Alcotest Array Bytecode Core Helpers Ir List Opt Printf Profiles Vm Workloads
