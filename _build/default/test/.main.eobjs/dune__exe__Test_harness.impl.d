test/test_harness.ml: Alcotest Core Float Harness List Printf Profiles String Workloads
