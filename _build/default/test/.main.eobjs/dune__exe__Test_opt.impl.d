test/test_opt.ml: Alcotest Array Bytecode Helpers Ir List Opt Option Printf Vm Workloads
