test/test_paths.ml: Alcotest Core Helpers Ir List Printf Profiles Vm
