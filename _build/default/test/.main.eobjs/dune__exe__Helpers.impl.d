test/helpers.ml: Bytecode Core Ir Jasm List Opt Profiles Vm
