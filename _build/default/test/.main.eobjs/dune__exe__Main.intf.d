test/main.mli:
