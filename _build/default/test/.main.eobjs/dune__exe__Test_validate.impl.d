test/test_validate.ml: Alcotest Array Core Helpers Ir List Option Profiles String
