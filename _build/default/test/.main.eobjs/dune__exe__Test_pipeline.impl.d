test/test_pipeline.ml: Alcotest Core Helpers List Option Printf Profiles Vm
