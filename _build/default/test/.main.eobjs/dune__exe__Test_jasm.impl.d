test/test_jasm.ml: Alcotest Helpers Jasm List Option Printf Vm
