test/test_profiles.ml: Alcotest Float Ir List Printf Profiles Vm
