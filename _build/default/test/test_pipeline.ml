(* End-to-end smoke tests: jasm source -> bytecode -> LIR -> optimizer ->
   (transform) -> VM, checking output and profile sanity. *)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let baseline_fib () =
  let res = Helpers.exec Helpers.fib_src [ 12 ] in
  check_int "fib 12" 144 (Option.get res.Vm.Interp.return_value);
  check_string "printed" "144\n" res.Vm.Interp.output

let baseline_loop () =
  let res = Helpers.exec Helpers.loop_src [ 100 ] in
  check_int "sum 0..99" 4950 (Option.get res.Vm.Interp.return_value)

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let same_output transform () =
  let base = Helpers.exec Helpers.loop_src [ 200 ] in
  let res, _ =
    Helpers.exec_transformed ~transform
      ~trigger:(Core.Sampler.Counter { interval = 10; jitter = 0 })
      Helpers.loop_src [ 200 ]
  in
  check_string "same output" base.Vm.Interp.output res.Vm.Interp.output;
  check_int "same result"
    (Option.get base.Vm.Interp.return_value)
    (Option.get res.Vm.Interp.return_value)

let perfect_profile_counts () =
  (* interval 1: all execution in duplicated code; the call-edge profile is
     exhaustive, so Main.main -> Counter.bump must be counted exactly n
     times *)
  let n = 50 in
  let _, collector =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec)
      ~trigger:Core.Sampler.Always Helpers.loop_src [ n ]
  in
  let edges = Profiles.Call_edge.to_alist collector.Profiles.Collector.call_edges in
  let bump_count =
    List.fold_left
      (fun acc ((e : Profiles.Call_edge.edge), c) ->
        if e.Profiles.Call_edge.callee = "Counter.bump" then acc + c else acc)
      0 edges
  in
  check_int "bump edges" n bump_count;
  (* field accesses: bump does one read + one write of Counter.total per
     iteration, and main reads it twice (print and return) *)
  check_int "field accesses"
    ((2 * n) + 2)
    (Profiles.Field_access.total collector.Profiles.Collector.fields)

let framework_overhead_small () =
  (* with the trigger disabled, Full-Duplication should cost only the
     checks: a few percent, never tens of percent *)
  let base = Helpers.exec Helpers.loop_src [ 2000 ] in
  let res, _ =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec)
      ~trigger:Core.Sampler.Never Helpers.loop_src [ 2000 ]
  in
  let overhead =
    float_of_int (res.Vm.Interp.cycles - base.Vm.Interp.cycles)
    /. float_of_int base.Vm.Interp.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.3f in (0, 0.30)" overhead)
    true
    (overhead > 0.0 && overhead < 0.30);
  check_int "no samples" 0 res.Vm.Interp.counters.Vm.Interp.samples;
  Alcotest.(check bool)
    "checks executed" true
    (res.Vm.Interp.counters.Vm.Interp.checks > 0)

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "baseline fib" `Quick baseline_fib;
        Alcotest.test_case "baseline loop" `Quick baseline_loop;
        Alcotest.test_case "full-dup preserves semantics" `Quick
          (same_output (Core.Transform.full_dup spec));
        Alcotest.test_case "no-dup preserves semantics" `Quick
          (same_output (Core.Transform.no_dup spec));
        Alcotest.test_case "partial-dup preserves semantics" `Quick
          (same_output (Core.Transform.partial_dup spec));
        Alcotest.test_case "yieldpoint-opt preserves semantics" `Quick
          (same_output (Core.Transform.full_dup_yieldpoint_opt spec));
        Alcotest.test_case "exhaustive preserves semantics" `Quick
          (same_output (Core.Transform.exhaustive spec));
        Alcotest.test_case "perfect profile is exhaustive" `Quick
          perfect_profile_counts;
        Alcotest.test_case "framework overhead is small" `Quick
          framework_overhead_small;
      ] );
  ]
