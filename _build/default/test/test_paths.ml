(* Ball-Larus path profiling, receiver-class profiling, and the
   convergence controller. *)

module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------- numbering on known shapes -------- *)

(* diamond with two return-terminated arms joined:
   0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 ret: exactly 2 paths from entry *)
let diamond_paths () =
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "d" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  let l3 = Ir.Build.new_block b in
  Ir.Build.set_term b l0
    (Lir.If { cond = Lir.Reg 0; if_true = l1; if_false = l2 });
  Ir.Build.set_term b l1 (Lir.Goto l3);
  Ir.Build.set_term b l2 (Lir.Goto l3);
  Ir.Build.set_term b l3 (Lir.Return None);
  let f = Ir.Build.finish b ~entry:l0 in
  let bl = Profiles.Ball_larus.number f in
  check_int "two paths" 2 (Profiles.Ball_larus.num_paths_from bl l0);
  (* the two paths decode to the two distinct arms *)
  let p0 = Profiles.Ball_larus.decode bl ~start:l0 0 in
  let p1 = Profiles.Ball_larus.decode bl ~start:l0 1 in
  check_bool "distinct paths" true (p0 <> p1);
  List.iter
    (fun p ->
      check_bool "starts at entry" true (List.hd p = l0);
      check_bool "ends at exit" true (List.nth p (List.length p - 1) = l3))
    [ p0; p1 ];
  check_bool "out of range rejected" true
    (try
       ignore (Profiles.Ball_larus.decode bl ~start:l0 2);
       false
     with Invalid_argument _ -> true)

(* loop: 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 (backedge) ; 3 ret.
   From the header (a start point), two acyclic paths: take the backedge
   (finish at 2) or exit through 3. *)
let loop_paths () =
  let b = Ir.Build.create ~name:{ Lir.mclass = "T"; mname = "l" } ~n_params:1 () in
  let l0 = Ir.Build.new_block b in
  let l1 = Ir.Build.new_block b in
  let l2 = Ir.Build.new_block b in
  let l3 = Ir.Build.new_block b in
  Ir.Build.set_term b l0 (Lir.Goto l1);
  Ir.Build.set_term b l1
    (Lir.If { cond = Lir.Reg 0; if_true = l2; if_false = l3 });
  Ir.Build.set_term b l2 (Lir.Goto l1);
  Ir.Build.set_term b l3 (Lir.Return None);
  let f = Ir.Build.finish b ~entry:l0 in
  let bl = Profiles.Ball_larus.number f in
  check_int "paths from header" 2 (Profiles.Ball_larus.num_paths_from bl l1);
  Alcotest.(check (list int))
    "start points = entry + header" [ l0; l1 ]
    (List.sort compare (Profiles.Ball_larus.start_points bl))

(* -------- end-to-end path profile -------- *)

let branchy_src =
  {|
  class Main {
    static fun main(n: int): int {
      var evens: int = 0;
      var odds: int = 0;
      var i: int = 0;
      while (i < n) {
        if ((i & 1) == 0) { evens = evens + 1; } else { odds = odds + 1; }
        i = i + 1;
      }
      print(evens);
      print(odds);
      return evens - odds;
    }
  }
|}

let exhaustive_paths () =
  let n = 40 in
  let _, collector =
    Helpers.exec_transformed
      ~transform:(Core.Transform.exhaustive Profiles.Specs.path_profile)
      ~trigger:Core.Sampler.Never branchy_src [ n ]
  in
  let paths = collector.Profiles.Collector.paths in
  (* each loop iteration flushes one path at the backedge, plus the final
     path through the exit: n + 1 + (header->exit check path) *)
  check_bool
    (Printf.sprintf "total paths %d >= iterations" (Profiles.Path_profile.total paths))
    true
    (Profiles.Path_profile.total paths >= n);
  (* the even and odd iteration paths are distinct and roughly balanced *)
  let by_count = Profiles.Path_profile.to_alist paths in
  match by_count with
  | ((_, _, _), c1) :: ((_, _, _), c2) :: _ ->
      check_bool "two hot paths" true (c1 = n / 2 && c2 = n / 2)
  | _ -> Alcotest.fail "expected at least two paths"

let decoded_paths_are_real () =
  (* every recorded path must decode to a valid block sequence of the
     function it was recorded in *)
  let _, collector =
    Helpers.exec_transformed
      ~transform:(Core.Transform.exhaustive Profiles.Specs.path_profile)
      ~trigger:Core.Sampler.Never branchy_src [ 17 ]
  in
  let classes, funcs = Helpers.build branchy_src in
  ignore classes;
  let numberings =
    List.map
      (fun (f : Lir.func) ->
        (Lir.string_of_method_ref f.Lir.fname, (f, Profiles.Ball_larus.number f)))
      funcs
  in
  List.iter
    (fun ((meth, start, path), _) ->
      let f, bl = List.assoc meth numberings in
      let blocks = Profiles.Ball_larus.decode bl ~start path in
      check_bool "path starts at its start point" true (List.hd blocks = start);
      (* consecutive blocks are connected in the CFG *)
      let rec ok = function
        | a :: (b :: _ as rest) ->
            List.mem b (Ir.Cfg.succs f a) && ok rest
        | _ -> true
      in
      check_bool "decoded path follows CFG edges" true (ok blocks))
    (Profiles.Path_profile.to_alist collector.Profiles.Collector.paths)

let sampled_paths_subset () =
  (* sampled path profile only contains paths the exhaustive one has *)
  let run trigger transform =
    let _, c =
      Helpers.exec_transformed ~transform ~trigger branchy_src [ 60 ]
    in
    Profiles.Path_profile.to_alist c.Profiles.Collector.paths
  in
  let exhaustive =
    run Core.Sampler.Never
      (Core.Transform.exhaustive Profiles.Specs.path_profile)
  in
  let sampled =
    run
      (Core.Sampler.Counter { interval = 9; jitter = 0 })
      (Core.Transform.full_dup Profiles.Specs.path_profile)
  in
  check_bool "some paths sampled" true (List.length sampled > 0);
  List.iter
    (fun (key, c) ->
      match List.assoc_opt key exhaustive with
      | Some ec ->
          check_bool "sampled count <= exhaustive count" true (c <= ec)
      | None -> Alcotest.failf "sampled a nonexistent path")
    sampled

(* -------- receiver profile -------- *)

let polymorphic_src =
  {|
  class Shape { fun area(): int { return 0; } }
  class Square extends Shape {
    var s: int;
    fun area(): int { return this.s * this.s; }
  }
  class Circle extends Shape {
    var r: int;
    fun area(): int { return (this.r * this.r * 355) / 113; }
  }
  class Main {
    static fun main(n: int): int {
      var sq: Square = new Square;
      sq.s = 3;
      var ci: Circle = new Circle;
      ci.r = 2;
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        var sh: Shape = null;
        if ((i % 10) < 9) { sh = sq; } else { sh = ci; }
        acc = (acc + sh.area()) & 65535;   // 90% Square receiver
        acc = (acc + sq.area()) & 65535;   // always Square
        i = i + 1;
      }
      print(acc);
      return acc;
    }
  }
|}

let receiver_profiling () =
  let _, collector =
    Helpers.exec_transformed
      ~transform:(Core.Transform.exhaustive Profiles.Specs.receiver_profile)
      ~trigger:Core.Sampler.Never polymorphic_src [ 100 ]
  in
  let r = collector.Profiles.Collector.receivers in
  check_bool "sites found" true (Profiles.Receiver_profile.n_sites r >= 2);
  (* exactly one of the area() sites is monomorphic *)
  let mono = Profiles.Receiver_profile.monomorphic_sites r in
  check_int "one monomorphic area site" 1
    (List.length
       (List.filter (fun (m, _, _) -> m = "Main.main") mono));
  (* the polymorphic site is dominated by Square at ~90% *)
  let poly =
    List.filter
      (fun (m, s) ->
        m = "Main.main" && not (List.exists (fun (m', s', _) -> m' = m && s' = s) mono))
      (Profiles.Receiver_profile.sites r)
  in
  match poly with
  | [ (m, s) ] -> (
      match Profiles.Receiver_profile.dominant r ~meth:m ~site:s with
      | Some (cls, frac) ->
          Alcotest.(check string) "dominant class" "Square" cls;
          check_bool (Printf.sprintf "fraction %.2f ~ 0.9" frac) true
            (frac > 0.85 && frac < 0.95)
      | None -> Alcotest.fail "expected a dominant class")
  | _ -> Alcotest.fail "expected exactly one polymorphic site in main"

(* -------- convergence controller -------- *)

let convergence_disables () =
  let classes, funcs = Helpers.build Helpers.loop_src in
  let funcs' =
    List.map
      (fun f ->
        (Core.Transform.full_dup Core.Spec.call_edge f).Core.Transform.func)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 10; jitter = 0 })
  in
  let ctl =
    Profiles.Convergence.create ~window:100 ~threshold:95.0 ~patience:2
      ~snapshot:(fun () ->
        Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges)
      sampler
  in
  let hooks =
    Profiles.Convergence.wrap ctl (Profiles.Collector.hooks collector sampler)
  in
  let res =
    Vm.Interp.run
      (Vm.Program.link classes ~funcs:funcs')
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 30_000 ] hooks
  in
  check_bool "converged" true (Profiles.Convergence.converged ctl);
  (* sampling stopped well before the end of the run *)
  check_bool
    (Printf.sprintf "samples capped (%d)" res.Vm.Interp.counters.Vm.Interp.samples)
    true
    (res.Vm.Interp.counters.Vm.Interp.samples < 1_000);
  check_bool "saw a few windows" true (Profiles.Convergence.windows_seen ctl >= 3)

let convergence_not_premature () =
  (* a snapshot that never stabilizes must never disable the sampler *)
  let sampler = Core.Sampler.create (Core.Sampler.Counter { interval = 1; jitter = 0 }) in
  let tick = ref 0 in
  let ctl =
    Profiles.Convergence.create ~window:10 ~threshold:99.0 ~patience:2
      ~snapshot:(fun () ->
        incr tick;
        [ (Printf.sprintf "k%d" !tick, 1) ])
      sampler
  in
  let wrapped =
    Profiles.Convergence.wrap ctl
      {
        Vm.Interp.null_hooks with
        Vm.Interp.fire = (fun tid -> Core.Sampler.fire sampler tid);
      }
  in
  for _ = 1 to 500 do
    ignore (wrapped.Vm.Interp.fire 0)
  done;
  check_bool "saw several windows" true (Profiles.Convergence.windows_seen ctl > 5);
  check_bool "never converges on drifting profile" false
    (Profiles.Convergence.converged ctl)


(* -------- calling-context tree -------- *)

let cct_unit () =
  let t = Profiles.Cct.create () in
  Profiles.Cct.record t [ ("main", -1); ("f", 3); ("g", 7) ];
  Profiles.Cct.record t [ ("main", -1); ("f", 3); ("g", 7) ];
  Profiles.Cct.record t [ ("main", -1); ("f", 3) ];
  Profiles.Cct.record t [ ("main", -1); ("h", 9); ("g", 2) ];
  check_int "walks" 4 (Profiles.Cct.total_walks t);
  check_int "nodes" 5 (Profiles.Cct.n_nodes t);
  check_int "depth" 3 (Profiles.Cct.max_depth t);
  (match Profiles.Cct.hot_contexts ~n:1 t with
  | [ (path, 2) ] ->
      Alcotest.(check (list string)) "hot path" [ "main"; "f"; "g" ] path
  | _ -> Alcotest.fail "expected main>f>g with 2 walks");
  (* the same methods through different call sites are distinct contexts *)
  Profiles.Cct.record t [ ("main", -1); ("f", 4) ];
  check_int "site-sensitive" 6 (Profiles.Cct.n_nodes t)

let cct_sampled () =
  (* fib gives a deep recursive context tree *)
  let _, collector =
    Helpers.exec_transformed
      ~transform:(Core.Transform.full_dup Profiles.Specs.cct_profile)
      ~trigger:(Core.Sampler.Counter { interval = 10; jitter = 0 })
      Helpers.fib_src [ 15 ]
  in
  let cct = collector.Profiles.Collector.cct in
  check_bool "walks recorded" true (Profiles.Cct.total_walks cct > 10);
  check_bool "recursion visible (depth > 4)" true
    (Profiles.Cct.max_depth cct > 4);
  (* every hot context is rooted at the program entry *)
  List.iter
    (fun (path, _) ->
      Alcotest.(check string) "rooted at main" "Main.main" (List.hd path))
    (Profiles.Cct.hot_contexts ~n:5 cct)

let suite =
  [
    ( "paths.numbering",
      [
        Alcotest.test_case "diamond" `Quick diamond_paths;
        Alcotest.test_case "loop starts" `Quick loop_paths;
      ] );
    ( "paths.profile",
      [
        Alcotest.test_case "exhaustive histogram" `Quick exhaustive_paths;
        Alcotest.test_case "decoded paths are real" `Quick decoded_paths_are_real;
        Alcotest.test_case "sampled subset" `Quick sampled_paths_subset;
      ] );
    ( "receivers",
      [ Alcotest.test_case "polymorphic site profile" `Quick receiver_profiling ] );
    ( "cct",
      [
        Alcotest.test_case "tree operations" `Quick cct_unit;
        Alcotest.test_case "sampled stack walks" `Quick cct_sampled;
      ] );
    ( "convergence",
      [
        Alcotest.test_case "disables on stable profile" `Quick
          convergence_disables;
        Alcotest.test_case "keeps sampling while drifting" `Quick
          convergence_not_premature;
      ] );
  ]
