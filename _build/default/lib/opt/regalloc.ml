module Lir = Ir.Lir

type assignment = { of_vreg : int array; n_phys : int; n_spills : int }

(* Live intervals over a linearised block order: conservative whole-
   function intervals [first_pos, last_pos] per vreg, where positions
   number every instruction in reverse-postorder block order.  Classic
   Poletto-Sarkar linear scan. *)

let intervals (f : Lir.func) =
  let order = Ir.Cfg.reverse_postorder f in
  let live = Liveness.compute f in
  let first = Hashtbl.create 64 and last = Hashtbl.create 64 in
  let pos = ref 0 in
  let touch r =
    if not (Hashtbl.mem first r) then Hashtbl.replace first r !pos;
    Hashtbl.replace last r !pos
  in
  List.iter
    (fun l ->
      let b = Lir.block f l in
      (* registers live-in/live-out extend across the whole block *)
      List.iter touch (Liveness.live_in live l);
      Array.iter
        (fun i ->
          incr pos;
          List.iter touch (Lir.uses_of_instr i);
          List.iter touch (Lir.defs_of_instr i))
        b.Lir.instrs;
      incr pos;
      List.iter touch (Lir.uses_of_term b.Lir.term);
      List.iter touch (Liveness.live_out live l))
    order;
  (* parameters are live from position 0 (even when never used) *)
  List.iter
    (fun r ->
      Hashtbl.replace first r 0;
      if not (Hashtbl.mem last r) then Hashtbl.replace last r 0)
    f.Lir.params;
  Hashtbl.fold
    (fun r fst acc -> (r, fst, Hashtbl.find last r) :: acc)
    first []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let allocate ?(n_phys = 24) (f : Lir.func) =
  let ivs = intervals f in
  let of_vreg = Array.make (max f.Lir.next_reg 1) (-1) in
  let free = Queue.create () in
  for p = 0 to n_phys - 1 do
    Queue.add p free
  done;
  let active = ref [] in
  (* (end, vreg, phys) sorted by end *)
  let n_spills = ref 0 in
  List.iter
    (fun (r, start, stop) ->
      (* expire *)
      let expired, still =
        List.partition (fun (e, _, _) -> e < start) !active
      in
      List.iter (fun (_, _, p) -> Queue.add p free) expired;
      active := still;
      if Queue.is_empty free then begin
        (* spill the interval that ends last (classic heuristic) *)
        let sorted =
          List.sort (fun (e1, _, _) (e2, _, _) -> compare e2 e1) !active
        in
        match sorted with
        | (e_last, v_last, p_last) :: _ when e_last > stop ->
            of_vreg.(r) <- p_last;
            of_vreg.(v_last) <- n_phys + !n_spills;
            incr n_spills;
            active :=
              (stop, r, p_last)
              :: List.filter (fun (_, v, _) -> v <> v_last) !active
        | _ ->
            of_vreg.(r) <- n_phys + !n_spills;
            incr n_spills
      end
      else begin
        let p = Queue.pop free in
        of_vreg.(r) <- p;
        active := (stop, r, p) :: !active
      end)
    ivs;
  { of_vreg; n_phys; n_spills = !n_spills }

let interference_free (f : Lir.func) a =
  let ivs = intervals f in
  let phys = List.filter (fun (r, _, _) -> a.of_vreg.(r) < a.n_phys && a.of_vreg.(r) >= 0) ivs in
  let overlap (_, s1, e1) (_, s2, e2) = not (e1 < s2 || e2 < s1) in
  let rec check = function
    | [] -> true
    | x :: rest ->
        List.for_all
          (fun y ->
            let (rx, _, _) = x and (ry, _, _) = y in
            (not (overlap x y)) || a.of_vreg.(rx) <> a.of_vreg.(ry) || rx = ry)
          rest
        && check rest
  in
  check phys
