module Lir = Ir.Lir

(* Returns the transformed function and the fast-path block label (whose
   single instruction is the new static call). *)
(* [impl] is the class *declaring* the method implementation that the
   predicted class would dispatch to (they differ when the predicted
   class inherits the method). *)
let guard_call_block (f : Lir.func) ~at:(bl, idx) ~predicted ~impl =
  let f = Lir.copy_func f in
  let b = Lir.block f bl in
  let dst, target, args, site =
    match b.Lir.instrs.(idx) with
    | Lir.Call { dst; kind = Lir.Virtual; target; args; site } ->
        (dst, target, args, site)
    | _ -> invalid_arg "Devirt: not a virtual call"
  in
  let recv =
    match args with
    | r :: _ -> r
    | [] -> invalid_arg "Devirt: virtual call without a receiver"
  in
  let n = Array.length b.Lir.instrs in
  (* continuation: everything after the call, original terminator *)
  let cont =
    Lir.add_block f
      {
        Lir.instrs = Array.sub b.Lir.instrs (idx + 1) (n - idx - 1);
        term = b.Lir.term;
        role = b.Lir.role;
      }
  in
  let fast =
    Lir.add_block f
      {
        Lir.instrs =
          [|
            Lir.Call
              {
                dst;
                kind = Lir.Static;
                target = { Lir.mclass = impl; mname = target.Lir.mname };
                args;
                site;
              };
          |];
        term = Lir.Goto cont;
        role = b.Lir.role;
      }
  in
  let slow =
    Lir.add_block f
      {
        Lir.instrs =
          [| Lir.Call { dst; kind = Lir.Virtual; target; args; site } |];
        term = Lir.Goto cont;
        role = b.Lir.role;
      }
  in
  let guard = Lir.fresh_reg f in
  Lir.set_block f bl
    {
      b with
      Lir.instrs =
        Array.append
          (Array.sub b.Lir.instrs 0 idx)
          [| Lir.Instance_test (guard, recv, predicted) |];
      term = Lir.If { cond = Lir.Reg guard; if_true = fast; if_false = slow };
    };
  (f, fast)

let guard_call f ~at ~predicted ?(impl = "") () =
  let impl = if impl = "" then predicted else impl in
  let f, _ = guard_call_block f ~at ~predicted ~impl in
  Ir.Verify.check_exn f;
  f

let guarded_inline f ~at ~predicted ~callee =
  let f, fast =
    guard_call_block f ~at ~predicted ~impl:callee.Lir.fname.Lir.mclass
  in
  let f = Inline.inline_static_call f ~callee ~at:(fast, 0) in
  Ir.Verify.check_exn f;
  f
