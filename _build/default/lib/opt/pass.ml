(* Pass manager for per-function LIR transformations.

   Every pass verifies its output in debug runs; [timed] accumulates
   wall-clock per stage for the compile-time experiments (Table 2's
   "Compile Time Increase" column). *)

type t = { pname : string; run : Ir.Lir.func -> Ir.Lir.func }

let make pname run = { pname; run }

let run_all ?(verify = true) passes f =
  List.fold_left
    (fun f p ->
      let f' = p.run f in
      if verify then Ir.Verify.check_exn f';
      f')
    f passes

type timing = { stage : string; seconds : float }

let timed passes f =
  let timings = ref [] in
  let f' =
    List.fold_left
      (fun f p ->
        let t0 = Sys.time () in
        let f' = p.run f in
        let t1 = Sys.time () in
        timings := { stage = p.pname; seconds = t1 -. t0 } :: !timings;
        f')
      f passes
  in
  (f', List.rev !timings)
