module Lir = Ir.Lir
module IntSet = Set.Make (Int)

type t = {
  func : Lir.func;
  ins : IntSet.t array;
  outs : IntSet.t array;
}

let block_use_def (b : Lir.block) =
  (* use = registers read before any write in the block *)
  let use = ref IntSet.empty and def = ref IntSet.empty in
  let see_uses rs =
    List.iter (fun r -> if not (IntSet.mem r !def) then use := IntSet.add r !use) rs
  in
  Array.iter
    (fun i ->
      see_uses (Lir.uses_of_instr i);
      List.iter (fun r -> def := IntSet.add r !def) (Lir.defs_of_instr i))
    b.Lir.instrs;
  see_uses (Lir.uses_of_term b.Lir.term);
  (!use, !def)

let compute (f : Lir.func) =
  let n = Lir.num_blocks f in
  let ins = Array.make n IntSet.empty in
  let outs = Array.make n IntSet.empty in
  let use = Array.make n IntSet.empty in
  let def = Array.make n IntSet.empty in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then begin
      let u, d = block_use_def b in
      use.(l) <- u;
      def.(l) <- d
    end
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for l = n - 1 downto 0 do
      if (Lir.block f l).Lir.role <> Lir.Dead then begin
        let out =
          List.fold_left
            (fun acc s -> IntSet.union acc ins.(s))
            IntSet.empty (Ir.Cfg.succs f l)
        in
        let inn = IntSet.union use.(l) (IntSet.diff out def.(l)) in
        if not (IntSet.equal out outs.(l) && IntSet.equal inn ins.(l)) then begin
          outs.(l) <- out;
          ins.(l) <- inn;
          changed := true
        end
      end
    done
  done;
  { func = f; ins; outs }

let live_out t l = IntSet.elements t.outs.(l)
let live_in t l = IntSet.elements t.ins.(l)

let dead_after t l =
  let b = Lir.block t.func l in
  let n = Array.length b.Lir.instrs in
  (* last_use.(r) = highest index (instruction or terminator = n) using r *)
  let last_use = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      List.iter (fun r -> Hashtbl.replace last_use r i) (Lir.uses_of_instr instr))
    b.Lir.instrs;
  List.iter (fun r -> Hashtbl.replace last_use r n) (Lir.uses_of_term b.Lir.term);
  fun r idx ->
    (not (IntSet.mem r t.outs.(l)))
    &&
    match Hashtbl.find_opt last_use r with
    | None -> true
    | Some last -> last <= idx
