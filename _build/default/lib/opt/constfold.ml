(* Block-local constant propagation and folding.

   Tracks registers holding known constants within a block, rewrites uses
   to immediates, folds fully-constant ALU operations, and turns
   constant-scrutinee branches into gotos.  Division and remainder by a
   constant zero are left alone (they must trap at runtime). *)

module Lir = Ir.Lir

let fold_binop op a b =
  match op with
  | Lir.Add -> Some (a + b)
  | Lir.Sub -> Some (a - b)
  | Lir.Mul -> Some (a * b)
  | Lir.Div -> if b = 0 then None else Some (a / b)
  | Lir.Rem -> if b = 0 then None else Some (a mod b)
  | Lir.And -> Some (a land b)
  | Lir.Or -> Some (a lor b)
  | Lir.Xor -> Some (a lxor b)
  | Lir.Shl -> Some (a lsl (b land 31))
  | Lir.Shr -> Some (a asr (b land 31))
  | Lir.Lt -> Some (if a < b then 1 else 0)
  | Lir.Le -> Some (if a <= b then 1 else 0)
  | Lir.Gt -> Some (if a > b then 1 else 0)
  | Lir.Ge -> Some (if a >= b then 1 else 0)
  | Lir.Eq -> Some (if a = b then 1 else 0)
  | Lir.Ne -> Some (if a <> b then 1 else 0)

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then begin
      let consts = Hashtbl.create 16 in
      let subst = function
        | Lir.Reg r as op -> (
            match Hashtbl.find_opt consts r with
            | Some k -> Lir.Imm k
            | None -> op)
        | op -> op
      in
      let kill r = Hashtbl.remove consts r in
      let instrs =
        Array.map
          (fun i ->
            let i =
              match i with
              | Lir.Move (r, a) -> Lir.Move (r, subst a)
              | Lir.Unop (r, op, a) -> Lir.Unop (r, op, subst a)
              | Lir.Binop (r, op, a, b) -> Lir.Binop (r, op, subst a, subst b)
              | Lir.Get_field (r, o, fl) -> Lir.Get_field (r, subst o, fl)
              | Lir.Put_field (o, fl, v) -> Lir.Put_field (subst o, fl, subst v)
              | Lir.Put_static (fl, v) -> Lir.Put_static (fl, subst v)
              | Lir.New_array (r, n) -> Lir.New_array (r, subst n)
              | Lir.Array_load (r, a, i) -> Lir.Array_load (r, subst a, subst i)
              | Lir.Array_store (a, i, v) ->
                  Lir.Array_store (subst a, subst i, subst v)
              | Lir.Array_length (r, a) -> Lir.Array_length (r, subst a)
              | Lir.Call { dst; kind; target; args; site } ->
                  Lir.Call { dst; kind; target; args = List.map subst args; site }
              | Lir.Intrinsic { dst; name; args } ->
                  Lir.Intrinsic { dst; name; args = List.map subst args }
              | Lir.Instance_test (r, o, c) -> Lir.Instance_test (r, subst o, c)
              | i -> i
            in
            let i =
              match i with
              | Lir.Unop (r, Lir.Neg, Lir.Imm k) -> Lir.Move (r, Lir.Imm (-k))
              | Lir.Unop (r, Lir.Not, Lir.Imm k) ->
                  Lir.Move (r, Lir.Imm (if k = 0 then 1 else 0))
              | Lir.Binop (r, op, Lir.Imm a, Lir.Imm b) -> (
                  match fold_binop op a b with
                  | Some k -> Lir.Move (r, Lir.Imm k)
                  | None -> i)
              | i -> i
            in
            (* update the constant environment *)
            (match i with
            | Lir.Move (r, Lir.Imm k) ->
                kill r;
                Hashtbl.replace consts r k
            | _ -> List.iter kill (Lir.defs_of_instr i));
            i)
          b.Lir.instrs
      in
      let term =
        match b.Lir.term with
        | Lir.If { cond; if_true; if_false } -> (
            match subst cond with
            | Lir.Imm k -> Lir.Goto (if k <> 0 then if_true else if_false)
            | cond -> Lir.If { cond; if_true; if_false })
        | Lir.Switch { scrut; cases; default } -> (
            match subst scrut with
            | Lir.Imm k -> (
                match List.assoc_opt k cases with
                | Some l -> Lir.Goto l
                | None -> Lir.Goto default)
            | scrut -> Lir.Switch { scrut; cases; default })
        | Lir.Return (Some v) -> Lir.Return (Some (subst v))
        | t -> t
      in
      Lir.set_block f l { b with Lir.instrs; term }
    end
  done;
  ignore (Ir.Cfg.remove_unreachable f);
  f

let pass = Pass.make "constfold" run
