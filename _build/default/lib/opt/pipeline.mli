(** The full compilation pipeline, mirroring the paper's setup: most
    optimization happens first, then instrumentation / code duplication is
    applied "relatively late in the compilation process", and the
    remaining backend stages (instruction selection, scheduling, register
    allocation) run on the duplicated code — which is why duplication
    increases compile time by a bounded fraction (Table 2). *)

val front_passes : Pass.t list
(** constfold, copyprop, dce, simplify-cfg. *)

val back_passes : Pass.t list
(** lower (selection), schedule, regalloc (timing only). *)

val front : ?inline:bool -> ?yieldpoints:bool -> Ir.Lir.func list -> Ir.Lir.func list
(** Frontend optimization (+ optional inlining heuristic), then yieldpoint
    insertion (on by default). *)

val back : Ir.Lir.func -> Ir.Lir.func

type compile_stats = {
  seconds_front : float;
  seconds_transform : float;
  seconds_back : float;
}

val compile :
  ?inline:bool ->
  ?yieldpoints:bool ->
  transform:(Ir.Lir.func -> Ir.Lir.func) ->
  Ir.Lir.func list ->
  Ir.Lir.func list * compile_stats
(** End-to-end: front, per-function transform, back; stage timings
    aggregated over all functions.  Use [transform = Fun.id] for the
    baseline compile. *)
