(** Backward register-liveness analysis over a {!Ir.Lir.func}. *)

type t

val compute : Ir.Lir.func -> t

val live_out : t -> Ir.Lir.label -> Ir.Lir.reg list
(** Registers live on exit from a block (sorted). *)

val live_in : t -> Ir.Lir.label -> Ir.Lir.reg list

val dead_after :
  t -> Ir.Lir.label -> (Ir.Lir.reg -> int -> bool)
(** [dead_after t l] is a predicate [p reg idx]: register [reg] is dead
    immediately after the instruction at index [idx] of block [l] (i.e. no
    later use in the block and not in live-out). *)
