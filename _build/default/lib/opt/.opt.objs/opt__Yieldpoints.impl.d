lib/opt/yieldpoints.ml: Ir List Pass
