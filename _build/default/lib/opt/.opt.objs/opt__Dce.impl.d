lib/opt/dce.ml: Array Hashtbl Ir List Liveness Pass
