lib/opt/copyprop.ml: Array Hashtbl Ir List Pass
