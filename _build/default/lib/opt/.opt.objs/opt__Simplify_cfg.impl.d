lib/opt/simplify_cfg.ml: Array Ir List Pass
