lib/opt/pipeline.ml: Constfold Copyprop Dce Inline List Lower Pass Regalloc Schedule Simplify_cfg Sys Yieldpoints
