lib/opt/liveness.mli: Ir
