lib/opt/devirt.ml: Array Inline Ir
