lib/opt/pipeline.mli: Ir Pass
