lib/opt/regalloc.ml: Array Hashtbl Ir List Liveness Queue
