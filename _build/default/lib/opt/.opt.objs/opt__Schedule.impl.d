lib/opt/schedule.ml: Array Hashtbl Ir List Option Pass
