lib/opt/pass.ml: Ir List Sys
