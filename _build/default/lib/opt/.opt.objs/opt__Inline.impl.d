lib/opt/inline.ml: Array Ir List Option
