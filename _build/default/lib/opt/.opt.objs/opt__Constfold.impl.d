lib/opt/constfold.ml: Array Hashtbl Ir List Pass
