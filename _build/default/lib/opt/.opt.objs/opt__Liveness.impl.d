lib/opt/liveness.ml: Array Hashtbl Int Ir List Set
