lib/opt/devirt.mli: Ir
