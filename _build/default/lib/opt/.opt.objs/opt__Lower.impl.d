lib/opt/lower.ml: Array Ir Pass
