(* "Instruction selection" stage: algebraic peepholes that a backend would
   apply while selecting machine instructions.  Runs after instrumentation
   / code duplication in the pipeline, like Jalapeno's BURS stage, so its
   (real, measured) cost contributes to the compile-time increase the
   paper reports in Table 2. *)

module Lir = Ir.Lir

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let rewrite = function
  | Lir.Binop (r, Lir.Add, a, Lir.Imm 0) | Lir.Binop (r, Lir.Sub, a, Lir.Imm 0)
  | Lir.Binop (r, Lir.Or, a, Lir.Imm 0) | Lir.Binop (r, Lir.Xor, a, Lir.Imm 0)
    ->
      Lir.Move (r, a)
  | Lir.Binop (r, Lir.Add, Lir.Imm 0, a) -> Lir.Move (r, a)
  | Lir.Binop (r, Lir.Mul, a, Lir.Imm 1) | Lir.Binop (r, Lir.Div, a, Lir.Imm 1)
    ->
      Lir.Move (r, a)
  | Lir.Binop (r, Lir.Mul, Lir.Imm 1, a) -> Lir.Move (r, a)
  | Lir.Binop (r, Lir.Mul, _, Lir.Imm 0) | Lir.Binop (r, Lir.Mul, Lir.Imm 0, _)
  | Lir.Binop (r, Lir.And, _, Lir.Imm 0) | Lir.Binop (r, Lir.And, Lir.Imm 0, _)
    ->
      Lir.Move (r, Lir.Imm 0)
  | Lir.Binop (r, Lir.Mul, a, Lir.Imm k) when is_pow2 k ->
      Lir.Binop (r, Lir.Shl, a, Lir.Imm (log2 k))
  | Lir.Binop (r, Lir.Mul, Lir.Imm k, a) when is_pow2 k ->
      Lir.Binop (r, Lir.Shl, a, Lir.Imm (log2 k))
  | Lir.Binop (r, Lir.Rem, a, Lir.Imm k) when is_pow2 k ->
      (* sound only for non-negative dividends in general; jasm's generated
         loop counters dominate this pattern, but to stay fully sound we
         keep it only for [k = 1] *)
      if k = 1 then Lir.Move (r, Lir.Imm 0) else Lir.Binop (r, Lir.Rem, a, Lir.Imm k)
  | i -> i

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then
      Lir.set_block f l { b with Lir.instrs = Array.map rewrite b.Lir.instrs }
  done;
  f

let pass = Pass.make "lower" run
