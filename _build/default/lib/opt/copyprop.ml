(* Block-local copy propagation: after [Move r, s] uses of [r] become uses
   of [s] until either register is redefined.  This cleans up most of the
   stack-shuffle moves the bytecode translator produces. *)

module Lir = Ir.Lir

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then begin
      let copies = Hashtbl.create 16 in
      (* copies: r -> s, meaning r currently equals register s *)
      let subst = function
        | Lir.Reg r as op -> (
            match Hashtbl.find_opt copies r with
            | Some s -> Lir.Reg s
            | None -> op)
        | op -> op
      in
      let kill r =
        Hashtbl.remove copies r;
        (* any copy whose source is r is invalidated *)
        let stale =
          Hashtbl.fold (fun k s acc -> if s = r then k :: acc else acc) copies []
        in
        List.iter (Hashtbl.remove copies) stale
      in
      let map_instr i =
        match i with
        | Lir.Move (r, a) -> Lir.Move (r, subst a)
        | Lir.Unop (r, op, a) -> Lir.Unop (r, op, subst a)
        | Lir.Binop (r, op, a, b) -> Lir.Binop (r, op, subst a, subst b)
        | Lir.Get_field (r, o, fl) -> Lir.Get_field (r, subst o, fl)
        | Lir.Put_field (o, fl, v) -> Lir.Put_field (subst o, fl, subst v)
        | Lir.Put_static (fl, v) -> Lir.Put_static (fl, subst v)
        | Lir.New_array (r, n) -> Lir.New_array (r, subst n)
        | Lir.Array_load (r, a, i) -> Lir.Array_load (r, subst a, subst i)
        | Lir.Array_store (a, i, v) -> Lir.Array_store (subst a, subst i, subst v)
        | Lir.Array_length (r, a) -> Lir.Array_length (r, subst a)
        | Lir.Call { dst; kind; target; args; site } ->
            Lir.Call { dst; kind; target; args = List.map subst args; site }
        | Lir.Intrinsic { dst; name; args } ->
            Lir.Intrinsic { dst; name; args = List.map subst args }
        | Lir.Instance_test (r, o, c) -> Lir.Instance_test (r, subst o, c)
        | i -> i
      in
      let instrs =
        Array.map
          (fun i ->
            let i = map_instr i in
            (match i with
            | Lir.Move (r, Lir.Reg s) when r <> s ->
                kill r;
                Hashtbl.replace copies r s
            | _ -> List.iter kill (Lir.defs_of_instr i));
            i)
          b.Lir.instrs
      in
      let term =
        match b.Lir.term with
        | Lir.If { cond; if_true; if_false } ->
            Lir.If { cond = subst cond; if_true; if_false }
        | Lir.Switch { scrut; cases; default } ->
            Lir.Switch { scrut = subst scrut; cases; default }
        | Lir.Return (Some v) -> Lir.Return (Some (subst v))
        | t -> t
      in
      Lir.set_block f l { b with Lir.instrs; term }
    end
  done;
  f

let pass = Pass.make "copyprop" run
