let front_passes =
  [ Constfold.pass; Copyprop.pass; Dce.pass; Simplify_cfg.pass ]

let regalloc_pass =
  Pass.make "regalloc" (fun f ->
      (* the assignment is computed for its (real) compile-time cost and
         validated by tests; the VM executes virtual registers *)
      ignore (Regalloc.allocate f);
      f)

let back_passes = [ Lower.pass; Schedule.pass; regalloc_pass ]

let front ?(inline = false) ?(yieldpoints = true) funcs =
  let funcs = List.map (Pass.run_all front_passes) funcs in
  let funcs = if inline then Inline.run_heuristic funcs else funcs in
  if yieldpoints then List.map (Pass.run_all [ Yieldpoints.pass ]) funcs
  else funcs

let back f = Pass.run_all back_passes f

type compile_stats = {
  seconds_front : float;
  seconds_transform : float;
  seconds_back : float;
}

let compile ?(inline = false) ?(yieldpoints = true) ~transform funcs =
  let t0 = Sys.time () in
  let funcs = front ~inline ~yieldpoints funcs in
  let t1 = Sys.time () in
  let funcs = List.map transform funcs in
  let t2 = Sys.time () in
  let funcs = List.map back funcs in
  let t3 = Sys.time () in
  ( funcs,
    {
      seconds_front = t1 -. t0;
      seconds_transform = t2 -. t1;
      seconds_back = t3 -. t2;
    } )
