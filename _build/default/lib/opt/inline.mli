(** Static-call inlining.

    Used both as a size-bounded heuristic pass (mirroring the paper's
    remark that more aggressive inlining before instrumentation would
    reduce the method-entry check overhead) and, with an explicit site
    list, by the feedback-directed-optimization example where a sampled
    call-edge profile chooses the sites. *)

val inline_static_call :
  Ir.Lir.func -> callee:Ir.Lir.func -> at:Ir.Lir.label * int -> Ir.Lir.func
(** Inline the static call at instruction [at] = (block, index).  Raises
    [Invalid_argument] when the instruction is not a static call of
    [callee]. *)

val run_heuristic :
  ?max_callee_size:int -> Ir.Lir.func list -> Ir.Lir.func list
(** Inline every static call whose callee is small and non-recursive.
    One top-down pass — no exponential growth. *)
