(** Profile-guided devirtualization with a class-test guard.

    Given a virtual call site and a predicted receiver class (e.g. from a
    sampled {!Profiles.Receiver_profile}), the call

    {v  dst = callv C.m(recv, args..) v}

    becomes

    {v
      t = recv instanceof Predicted
      if t then { dst = call Predicted.m(recv, args..)   (inlined) }
           else { dst = callv C.m(recv, args..) }
    v}

    — the standard guarded inlining an adaptive JIT performs from exactly
    the profiles this framework collects online. *)

val guard_call :
  Ir.Lir.func ->
  at:Ir.Lir.label * int ->
  predicted:string ->
  ?impl:string ->
  unit ->
  Ir.Lir.func
(** Insert the guard and the static fast path (not yet inlined).  [impl]
    (default [predicted]) is the class declaring the implementation the
    predicted class dispatches to.  Raises [Invalid_argument] when the
    instruction is not a virtual call. *)

val guarded_inline :
  Ir.Lir.func ->
  at:Ir.Lir.label * int ->
  predicted:string ->
  callee:Ir.Lir.func ->
  Ir.Lir.func
(** {!guard_call} followed by inlining the fast-path static call with
    [callee] (the predicted class's implementation). *)
