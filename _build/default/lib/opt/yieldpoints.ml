(* Yieldpoint insertion (baseline-compiler duty in Jalapeno).

   "Jalapeno currently places yieldpoints on all method entries and
   backedges to guarantee that there is a finite amount of time between
   yieldpoints" (paper, section 4.5).  We do the same: an entry yieldpoint
   at the start of the entry block, and one yieldpoint block split into
   every retreating edge. *)

module Lir = Ir.Lir

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  Ir.Edit.prepend f f.Lir.entry [ Lir.Yieldpoint Lir.Yp_entry ];
  let backedges = Ir.Loops.retreating_edges f in
  List.iter
    (fun (src, dst) ->
      ignore
        (Ir.Edit.split_edge f ~src ~dst ~role:Lir.Orig
           ~instrs:[ Lir.Yieldpoint Lir.Yp_backedge ]))
    backedges;
  f

let pass = Pass.make "yieldpoints" run

let strip (f : Lir.func) =
  let f = Lir.copy_func f in
  for l = 0 to Lir.num_blocks f - 1 do
    if (Lir.block f l).Lir.role <> Lir.Dead then
      Ir.Edit.filter_instrs f l (function Lir.Yieldpoint _ -> false | _ -> true)
  done;
  f
