(** Linear-scan register allocation (the "register allocation" stage that
    Jalapeno runs after code duplication; Table 2 attributes the compile
    time increase mostly to these post-duplication stages).

    The VM executes virtual registers directly, so the computed assignment
    is returned for inspection (and interference-freedom is unit-tested)
    but does not rewrite the code. *)

type assignment = {
  of_vreg : int array; (* virtual register -> physical register or spill *)
  n_phys : int;
  n_spills : int;
}

val allocate : ?n_phys:int -> Ir.Lir.func -> assignment
(** Physical registers default to 24 (a PowerPC-ish allocatable set).
    Spilled vregs get slots numbered [n_phys + k]. *)

val interference_free : Ir.Lir.func -> assignment -> bool
(** Checks that no two simultaneously-live virtual registers share a
    physical register (used by tests). *)
