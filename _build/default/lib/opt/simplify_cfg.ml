(* CFG cleanup: skip empty forwarding blocks, merge straight-line pairs,
   drop unreachable blocks.  Keeps labels stable (dead placeholders). *)

module Lir = Ir.Lir

(* Redirect edges through empty [Goto] blocks (no instructions). *)
let thread_gotos f =
  let n = Lir.num_blocks f in
  let forward = Array.make n (-1) in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead && Array.length b.Lir.instrs = 0 then
      match b.Lir.term with
      | Lir.Goto t when t <> l -> forward.(l) <- t
      | _ -> ()
  done;
  (* resolve chains, guarding against cycles of empty blocks *)
  let rec resolve seen l =
    if forward.(l) >= 0 && not (List.mem l seen) then
      resolve (l :: seen) forward.(l)
    else l
  in
  let changed = ref false in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then begin
      let term =
        Lir.map_term_labels
          (fun t ->
            let t' = resolve [] t in
            if t' <> t then changed := true;
            t')
          b.Lir.term
      in
      Lir.set_block f l { b with Lir.term }
    end
  done;
  !changed

(* Merge [a -> b] when a's only successor is b, b's only predecessor is a,
   and b is not the entry. *)
let merge_pairs f =
  let changed = ref false in
  let preds = Ir.Cfg.predecessors f in
  for a = 0 to Lir.num_blocks f - 1 do
    let ba = Lir.block f a in
    if ba.Lir.role <> Lir.Dead then
      match ba.Lir.term with
      | Lir.Goto btgt
        when btgt <> a && btgt <> f.Lir.entry
             && preds.(btgt) = [ a ]
             && (Lir.block f btgt).Lir.role = ba.Lir.role ->
          let bb = Lir.block f btgt in
          Lir.set_block f a
            {
              ba with
              Lir.instrs = Array.append ba.Lir.instrs bb.Lir.instrs;
              term = bb.Lir.term;
            };
          Lir.set_block f btgt Lir.dead_block;
          changed := true
      | _ -> ()
  done;
  !changed

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  let continue_ = ref true in
  while !continue_ do
    let c1 = thread_gotos f in
    ignore (Ir.Cfg.remove_unreachable f);
    let c2 = merge_pairs f in
    ignore (Ir.Cfg.remove_unreachable f);
    continue_ := c1 || c2
  done;
  f

let pass = Pass.make "simplify-cfg" run
