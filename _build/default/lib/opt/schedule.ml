(* List scheduling within basic blocks ("instruction scheduling" stage of
   the post-duplication pipeline).

   Builds a dependence DAG per block (register true/anti/output
   dependences; memory operations, calls, intrinsics, yieldpoints and
   instrumentation are ordering barriers relative to their class) and
   emits instructions greedily by critical-path height.  Semantics are
   preserved by construction; a property test cross-checks program output
   with scheduling on and off. *)

module Lir = Ir.Lir

type kind = K_pure | K_load | K_store | K_barrier

let kind_of = function
  | Lir.Move _ | Lir.Unop _ | Lir.Binop _ -> K_pure
  | Lir.Get_field _ | Lir.Get_static _ | Lir.Array_load _ | Lir.Array_length _
  | Lir.Instance_test _ ->
      K_load
  | Lir.Put_field _ | Lir.Put_static _ | Lir.Array_store _ -> K_store
  | Lir.New_object _ | Lir.New_array _ | Lir.Call _ | Lir.Intrinsic _
  | Lir.Yieldpoint _ | Lir.Instrument _ | Lir.Guarded_instrument _ ->
      K_barrier

let latency = function
  | Lir.Get_field _ | Lir.Get_static _ | Lir.Array_load _ -> 2
  | Lir.Call _ -> 4
  | _ -> 1

let schedule_block (instrs : Lir.instr array) =
  let n = Array.length instrs in
  if n <= 1 then instrs
  else begin
    let succs = Array.make n [] in
    let n_preds = Array.make n 0 in
    let add_edge i j =
      if i <> j then begin
        succs.(i) <- j :: succs.(i);
        n_preds.(j) <- n_preds.(j) + 1
      end
    in
    (* register dependences *)
    let last_def = Hashtbl.create 16 in
    let last_uses = Hashtbl.create 16 in
    for j = 0 to n - 1 do
      let uses = Lir.uses_of_instr instrs.(j) in
      let defs = Lir.defs_of_instr instrs.(j) in
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with
          | Some i -> add_edge i j (* true dependence *)
          | None -> ());
          Hashtbl.replace last_uses r
            (j :: Option.value ~default:[] (Hashtbl.find_opt last_uses r)))
        uses;
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with
          | Some i -> add_edge i j (* output dependence *)
          | None -> ());
          (match Hashtbl.find_opt last_uses r with
          | Some us -> List.iter (fun i -> add_edge i j) us (* anti *)
          | None -> ());
          Hashtbl.replace last_def r j;
          Hashtbl.remove last_uses r)
        defs
    done;
    (* memory / ordering dependences *)
    let last_store = ref (-1) in
    let loads_since_store = ref [] in
    let last_barrier = ref (-1) in
    for j = 0 to n - 1 do
      (match kind_of instrs.(j) with
      | K_pure -> ()
      | K_load ->
          if !last_store >= 0 then add_edge !last_store j;
          if !last_barrier >= 0 then add_edge !last_barrier j;
          loads_since_store := j :: !loads_since_store
      | K_store ->
          if !last_store >= 0 then add_edge !last_store j;
          if !last_barrier >= 0 then add_edge !last_barrier j;
          List.iter (fun i -> add_edge i j) !loads_since_store;
          last_store := j;
          loads_since_store := []
      | K_barrier ->
          (* a barrier orders against everything earlier with effects *)
          if !last_store >= 0 then add_edge !last_store j;
          if !last_barrier >= 0 then add_edge !last_barrier j;
          List.iter (fun i -> add_edge i j) !loads_since_store;
          last_barrier := j;
          last_store := j;
          loads_since_store := []);
      (* division can trap: treat as ordered against barriers *)
      match instrs.(j) with
      | Lir.Binop (_, (Lir.Div | Lir.Rem), _, _) ->
          if !last_barrier >= 0 then add_edge !last_barrier j
      | _ -> ()
    done;
    (* critical-path heights *)
    let height = Array.make n 0 in
    for i = n - 1 downto 0 do
      let h =
        List.fold_left (fun acc j -> max acc (height.(j) + latency instrs.(j))) 0
          succs.(i)
      in
      height.(i) <- h
    done;
    (* greedy emission: among ready nodes pick max height, then min index
       (stable for determinism) *)
    let remaining = ref n in
    let ready = ref [] in
    for i = 0 to n - 1 do
      if n_preds.(i) = 0 then ready := i :: !ready
    done;
    let out = Array.make n instrs.(0) in
    let k = ref 0 in
    while !remaining > 0 do
      match !ready with
      | [] -> failwith "Schedule: dependence cycle (impossible)"
      | _ ->
          let best =
            List.fold_left
              (fun acc i ->
                match acc with
                | None -> Some i
                | Some b ->
                    if height.(i) > height.(b)
                       || (height.(i) = height.(b) && i < b)
                    then Some i
                    else acc)
              None !ready
          in
          let i = Option.get best in
          ready := List.filter (fun j -> j <> i) !ready;
          out.(!k) <- instrs.(i);
          incr k;
          decr remaining;
          List.iter
            (fun j ->
              n_preds.(j) <- n_preds.(j) - 1;
              if n_preds.(j) = 0 then ready := j :: !ready)
            succs.(i)
    done;
    out
  end

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then
      Lir.set_block f l { b with Lir.instrs = schedule_block b.Lir.instrs }
  done;
  f

let pass = Pass.make "schedule" run
