module Lir = Ir.Lir

(* Splice [callee]'s blocks into [f], renaming registers and labels.
   The call instruction is replaced by parameter moves plus a jump to the
   inlined entry; every [Return] becomes a move to the call's destination
   plus a jump to the continuation block holding the rest of the caller
   block. *)
let inline_static_call (f : Lir.func) ~(callee : Lir.func) ~at:(bl, idx) =
  let f = Lir.copy_func f in
  let b = Lir.block f bl in
  let dst, args, target =
    match b.Lir.instrs.(idx) with
    | Lir.Call { dst; kind = Lir.Static; target; args; _ } -> (dst, args, target)
    | _ -> invalid_arg "Inline: not a static call"
  in
  if not (Lir.method_ref_equal target callee.Lir.fname) then
    invalid_arg "Inline: callee mismatch";
  let reg_base = f.Lir.next_reg in
  f.Lir.next_reg <- f.Lir.next_reg + callee.Lir.next_reg;
  let rename_reg r = reg_base + r in
  let rename_op = function
    | Lir.Reg r -> Lir.Reg (rename_reg r)
    | Lir.Imm n -> Lir.Imm n
  in
  (* continuation block: instructions after the call + original terminator *)
  let n = Array.length b.Lir.instrs in
  let cont_instrs = Array.sub b.Lir.instrs (idx + 1) (n - idx - 1) in
  let cont =
    Lir.add_block f { Lir.instrs = cont_instrs; term = b.Lir.term; role = b.Lir.role }
  in
  (* clone callee blocks *)
  let nblocks = Lir.num_blocks callee in
  let label_map = Array.make nblocks (-1) in
  for l = 0 to nblocks - 1 do
    let cb = Lir.block callee l in
    if cb.Lir.role <> Lir.Dead then
      label_map.(l) <- Lir.add_block f { cb with Lir.role = b.Lir.role }
  done;
  let rename_label l =
    assert (label_map.(l) >= 0);
    label_map.(l)
  in
  let rename_instr i =
    let mr r = rename_reg r in
    let mo = rename_op in
    match i with
    | Lir.Move (r, a) -> Lir.Move (mr r, mo a)
    | Lir.Unop (r, op, a) -> Lir.Unop (mr r, op, mo a)
    | Lir.Binop (r, op, a, c) -> Lir.Binop (mr r, op, mo a, mo c)
    | Lir.Get_field (r, o, fl) -> Lir.Get_field (mr r, mo o, fl)
    | Lir.Put_field (o, fl, v) -> Lir.Put_field (mo o, fl, mo v)
    | Lir.Get_static (r, fl) -> Lir.Get_static (mr r, fl)
    | Lir.Put_static (fl, v) -> Lir.Put_static (fl, mo v)
    | Lir.New_object (r, c) -> Lir.New_object (mr r, c)
    | Lir.New_array (r, nn) -> Lir.New_array (mr r, mo nn)
    | Lir.Array_load (r, a, ix) -> Lir.Array_load (mr r, mo a, mo ix)
    | Lir.Array_store (a, ix, v) -> Lir.Array_store (mo a, mo ix, mo v)
    | Lir.Array_length (r, a) -> Lir.Array_length (mr r, mo a)
    | Lir.Call { dst; kind; target; args; site } ->
        Lir.Call
          { dst = Option.map mr dst; kind; target; args = List.map mo args; site }
    | Lir.Intrinsic { dst; name; args } ->
        Lir.Intrinsic
          { dst = Option.map mr dst; name; args = List.map mo args }
    | Lir.Instance_test (r, o, c) -> Lir.Instance_test (mr r, mo o, c)
    | Lir.Yieldpoint k -> Lir.Yieldpoint k
    | Lir.Instrument op -> Lir.Instrument op
    | Lir.Guarded_instrument op -> Lir.Guarded_instrument op
  in
  for l = 0 to nblocks - 1 do
    if label_map.(l) >= 0 then begin
      let orig = Lir.block callee l in
      let instrs = Array.map rename_instr orig.Lir.instrs in
      match orig.Lir.term with
      | Lir.Return v ->
          (* result move (when the caller wants one), then fall into the
             continuation *)
          let extra =
            match (v, dst) with
            | Some v, Some d -> [| Lir.Move (d, rename_op v) |]
            | _ -> [||]
          in
          Lir.set_block f label_map.(l)
            {
              Lir.instrs = Array.append instrs extra;
              term = Lir.Goto cont;
              role = b.Lir.role;
            }
      | t ->
          (* rename both the successor labels and the operands read by the
             terminator (branch conditions, switch scrutinees) *)
          let t =
            match t with
            | Lir.If { cond; if_true; if_false } ->
                Lir.If { cond = rename_op cond; if_true; if_false }
            | Lir.Switch { scrut; cases; default } ->
                Lir.Switch { scrut = rename_op scrut; cases; default }
            | t -> t
          in
          Lir.set_block f label_map.(l)
            {
              Lir.instrs;
              term = Lir.map_term_labels rename_label t;
              role = b.Lir.role;
            }
    end
  done;
  (* rewrite the call site: prefix instructions + parameter moves + goto *)
  let param_moves =
    List.map2
      (fun p a -> Lir.Move (rename_reg p, a))
      callee.Lir.params args
  in
  let prefix = Array.sub b.Lir.instrs 0 idx in
  Lir.set_block f bl
    {
      b with
      Lir.instrs = Array.append prefix (Array.of_list param_moves);
      term = Lir.Goto (rename_label callee.Lir.entry);
    };
  f

let func_size (f : Lir.func) =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      if b.Lir.role <> Lir.Dead then n := !n + Array.length b.Lir.instrs + 1)
    f.Lir.blocks;
  !n

let is_recursive (f : Lir.func) =
  let found = ref false in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      Array.iter
        (function
          | Lir.Call { target; _ } when Lir.method_ref_equal target f.Lir.fname ->
              found := true
          | _ -> ())
        b.Lir.instrs)
    f.Lir.blocks;
  !found

let find_inlinable_site funcs (f : Lir.func) ~max_callee_size =
  let result = ref None in
  (try
     for l = 0 to Lir.num_blocks f - 1 do
       let b = Lir.block f l in
       if b.Lir.role <> Lir.Dead then
         Array.iteri
           (fun i instr ->
             match instr with
             | Lir.Call { kind = Lir.Static; target; _ }
               when not (Lir.method_ref_equal target f.Lir.fname) -> (
                 match
                   List.find_opt
                     (fun (g : Lir.func) -> Lir.method_ref_equal g.Lir.fname target)
                     funcs
                 with
                 | Some callee
                   when func_size callee <= max_callee_size
                        && not (is_recursive callee) ->
                     result := Some (l, i, callee);
                     raise Exit
                 | _ -> ())
             | _ -> ())
           b.Lir.instrs
     done
   with Exit -> ());
  !result

let run_heuristic ?(max_callee_size = 12) funcs =
  (* one pass over each function; inline sites found against the ORIGINAL
     callee bodies so growth stays linear *)
  List.map
    (fun f ->
      let budget = ref 8 in
      let rec go f =
        if !budget = 0 then f
        else
          match find_inlinable_site funcs f ~max_callee_size with
          | None -> f
          | Some (l, i, callee) ->
              decr budget;
              go (inline_static_call f ~callee ~at:(l, i))
      in
      let f' = go f in
      Ir.Verify.check_exn f';
      f')
    funcs
