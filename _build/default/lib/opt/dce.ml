(* Dead-code elimination: removes side-effect-free instructions whose
   result is never used.  Loads, stores, calls, allocations, division
   (may trap), yieldpoints and instrumentation are never removed.

   Within each block a precise backward scan maintains the live set
   (seeded from the block's live-out), so stack-slot reuse — a register
   redefined before its later use — does not keep dead definitions
   alive. *)

module Lir = Ir.Lir

let removable = function
  | Lir.Move _ | Lir.Unop _ -> true
  | Lir.Binop (_, (Lir.Div | Lir.Rem), _, Lir.Imm k) -> k <> 0
  | Lir.Binop (_, (Lir.Div | Lir.Rem), _, Lir.Reg _) -> false
  | Lir.Binop _ -> true
  | _ -> false

let run (f : Lir.func) =
  let f = Lir.copy_func f in
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Liveness.compute f in
    for l = 0 to Lir.num_blocks f - 1 do
      let b = Lir.block f l in
      if b.Lir.role <> Lir.Dead then begin
        let keep = Array.make (Array.length b.Lir.instrs) true in
        let live_now = Hashtbl.create 16 in
        List.iter (fun r -> Hashtbl.replace live_now r ()) (Liveness.live_out live l);
        List.iter
          (fun r -> Hashtbl.replace live_now r ())
          (Lir.uses_of_term b.Lir.term);
        for i = Array.length b.Lir.instrs - 1 downto 0 do
          let instr = b.Lir.instrs.(i) in
          let defs = Lir.defs_of_instr instr in
          let needed =
            (not (removable instr))
            || List.exists (Hashtbl.mem live_now) defs
          in
          if needed then begin
            (* a def ends the upward liveness of its register... *)
            List.iter (Hashtbl.remove live_now) defs;
            (* ...and its uses become live above *)
            List.iter
              (fun r -> Hashtbl.replace live_now r ())
              (Lir.uses_of_instr instr)
          end
          else begin
            keep.(i) <- false;
            changed := true
          end
        done;
        if Array.exists not keep then begin
          let instrs =
            b.Lir.instrs |> Array.to_list
            |> List.filteri (fun i _ -> keep.(i))
            |> Array.of_list
          in
          Lir.set_block f l { b with Lir.instrs }
        end
      end
    done
  done;
  f

let pass = Pass.make "dce" run
