module Lir = Ir.Lir

let method_to_func ~cls (m : Classfile.meth) =
  let code = m.Classfile.code in
  let n = Array.length code in
  let max_stack = Bverify.max_stack m in
  (* Recompute per-instruction stack depths (the verifier established they
     are consistent). *)
  let depth = Array.make n (-1) in
  let () =
    let worklist = Queue.create () in
    let visit at d =
      if depth.(at) = -1 then begin
        depth.(at) <- d;
        Queue.add at worklist
      end
    in
    visit 0 0;
    while not (Queue.is_empty worklist) do
      let at = Queue.pop worklist in
      let pops, pushes = Bc.stack_effect code.(at) in
      let d' = depth.(at) - pops + pushes in
      List.iter (fun t -> visit t d') (Bc.branch_targets code.(at));
      if Bc.falls_through code.(at) then visit (at + 1) d'
    done
  in
  let reachable at = depth.(at) >= 0 in
  (* Leaders: index 0, branch targets, instructions after a branch. *)
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun at i ->
      if reachable at then begin
        List.iter (fun t -> leader.(t) <- true) (Bc.branch_targets i);
        match i with
        | Bc.Goto _ | Bc.If_cmp _ | Bc.If _ | Bc.Switch _ | Bc.Return
        | Bc.Return_value ->
            if at + 1 < n then leader.(at + 1) <- true
        | _ -> ()
      end)
    code;
  let n_params = m.Classfile.n_args + if m.Classfile.static then 0 else 1 in
  let b =
    Ir.Build.create
      ~n_regs:(m.Classfile.max_locals + max_stack)
      ~name:{ Lir.mclass = cls; mname = m.Classfile.mname }
      ~n_params ()
  in
  let scratch = Ir.Build.fresh_reg b in
  let stack_reg d = m.Classfile.max_locals + d in
  (* Pre-create a block for every reachable leader. *)
  let block_of = Array.make n (-1) in
  for at = 0 to n - 1 do
    if leader.(at) && reachable at then block_of.(at) <- Ir.Build.new_block b
  done;
  let label_of at =
    assert (block_of.(at) >= 0);
    block_of.(at)
  in
  (* Translate each block. *)
  for start = 0 to n - 1 do
    if leader.(start) && reachable start then begin
      let l = label_of start in
      let at = ref start in
      let stop = ref false in
      while not !stop do
        let i = code.(!at) in
        let d = depth.(!at) in
        let s k = Lir.Reg (stack_reg k) in
        let emit x = Ir.Build.emit b l x in
        (match i with
        | Bc.Const k -> emit (Lir.Move (stack_reg d, Lir.Imm k))
        | Bc.Load slot -> emit (Lir.Move (stack_reg d, Lir.Reg slot))
        | Bc.Store slot -> emit (Lir.Move (slot, s (d - 1)))
        | Bc.Dup -> emit (Lir.Move (stack_reg d, s (d - 1)))
        | Bc.Pop -> ()
        | Bc.Swap ->
            emit (Lir.Move (scratch, s (d - 1)));
            emit (Lir.Move (stack_reg (d - 1), s (d - 2)));
            emit (Lir.Move (stack_reg (d - 2), Lir.Reg scratch))
        | Bc.Binop op ->
            emit (Lir.Binop (stack_reg (d - 2), op, s (d - 2), s (d - 1)))
        | Bc.Unop op -> emit (Lir.Unop (stack_reg (d - 1), op, s (d - 1)))
        | Bc.Goto _ | Bc.If_cmp _ | Bc.If _ | Bc.Switch _ | Bc.Return
        | Bc.Return_value ->
            () (* handled as terminators below *)
        | Bc.Get_field fr ->
            emit (Lir.Get_field (stack_reg (d - 1), s (d - 1), fr))
        | Bc.Put_field fr -> emit (Lir.Put_field (s (d - 2), fr, s (d - 1)))
        | Bc.Get_static fr -> emit (Lir.Get_static (stack_reg d, fr))
        | Bc.Put_static fr -> emit (Lir.Put_static (fr, s (d - 1)))
        | Bc.New c -> emit (Lir.New_object (stack_reg d, c))
        | Bc.New_array -> emit (Lir.New_array (stack_reg (d - 1), s (d - 1)))
        | Bc.Array_load ->
            emit (Lir.Array_load (stack_reg (d - 2), s (d - 2), s (d - 1)))
        | Bc.Array_store ->
            emit (Lir.Array_store (s (d - 3), s (d - 2), s (d - 1)))
        | Bc.Array_length ->
            emit (Lir.Array_length (stack_reg (d - 1), s (d - 1)))
        | Bc.Invoke_static (target, argc, res) ->
            let args = List.init argc (fun k -> s (d - argc + k)) in
            let dst = if res then Some (stack_reg (d - argc)) else None in
            emit (Lir.Call { dst; kind = Lir.Static; target; args; site = !at })
        | Bc.Invoke_virtual (target, argc, res) ->
            let args = List.init (argc + 1) (fun k -> s (d - argc - 1 + k)) in
            let dst = if res then Some (stack_reg (d - argc - 1)) else None in
            emit (Lir.Call { dst; kind = Lir.Virtual; target; args; site = !at })
        | Bc.Intrinsic (name, argc, res) ->
            let args = List.init argc (fun k -> s (d - argc + k)) in
            let dst = if res then Some (stack_reg (d - argc)) else None in
            emit (Lir.Intrinsic { dst; name; args }));
        (* Terminate or continue the block. *)
        (match i with
        | Bc.Goto t -> Ir.Build.set_term b l (Lir.Goto (label_of t))
        | Bc.If_cmp (c, t) ->
            Ir.Build.emit b l
              (Lir.Binop (scratch, Bc.cmp_to_binop c, s (d - 2), s (d - 1)));
            Ir.Build.set_term b l
              (Lir.If
                 {
                   cond = Lir.Reg scratch;
                   if_true = label_of t;
                   if_false = label_of (!at + 1);
                 })
        | Bc.If (c, t) ->
            Ir.Build.emit b l
              (Lir.Binop (scratch, Bc.cmp_to_binop c, s (d - 1), Lir.Imm 0));
            Ir.Build.set_term b l
              (Lir.If
                 {
                   cond = Lir.Reg scratch;
                   if_true = label_of t;
                   if_false = label_of (!at + 1);
                 })
        | Bc.Switch (cases, default) ->
            Ir.Build.set_term b l
              (Lir.Switch
                 {
                   scrut = s (d - 1);
                   cases = List.map (fun (c, t) -> (c, label_of t)) cases;
                   default = label_of default;
                 })
        | Bc.Return -> Ir.Build.set_term b l (Lir.Return None)
        | Bc.Return_value -> Ir.Build.set_term b l (Lir.Return (Some (s (d - 1))))
        | _ ->
            if !at + 1 >= n then assert false (* verifier rejects fall-off *)
            else if leader.(!at + 1) then
              Ir.Build.set_term b l (Lir.Goto (label_of (!at + 1)))
            else ());
        if Ir.Build.has_term b l then stop := true else incr at
      done
    end
  done;
  let f = Ir.Build.finish b ~entry:(label_of 0) in
  Ir.Verify.check_exn f;
  f

let program_to_funcs (p : Classfile.program) =
  List.concat_map
    (fun (c : Classfile.cls) ->
      List.map
        (fun m -> method_to_func ~cls:c.Classfile.cname m)
        c.Classfile.methods)
    p
