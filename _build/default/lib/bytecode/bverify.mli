(** Bytecode verifier: stack discipline and jump-target sanity.

    The translation to LIR maps each stack depth to a fixed register, which
    is only sound when every control-flow merge agrees on the stack depth —
    exactly what this verifier enforces (the same invariant the JVM
    verifier establishes for Java bytecode). *)

type error = { at : int; msg : string }

val check_method : Classfile.meth -> (int, error) result
(** Returns the maximum operand-stack depth on success. *)

val check_program : Classfile.program -> (string * error) list
(** All errors across the program, tagged ["Class.method"]. *)

val max_stack : Classfile.meth -> int
(** {!check_method}, raising [Failure] on error. *)
