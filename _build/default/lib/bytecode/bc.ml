(* JVM-like stack bytecode.

   This plays the role of Java bytecode in the paper's pipeline: the jasm
   frontend compiles to it, and [To_lir] translates it to register LIR the
   way Jalapeno's compilers do (locals and stack slots map to fixed virtual
   registers, so control-flow merges need no phis).

   Jump targets are instruction indices.  A jump to an index less than or
   equal to the current one is a backward branch — the paper's notion of
   backedge, and the call-site id recorded by call-edge profiling is the
   instruction index of the invoke (the paper's "bytecode offset"). *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type instr =
  | Const of int
  | Load of int  (* push local slot *)
  | Store of int (* pop into local slot *)
  | Dup
  | Pop
  | Swap
  | Binop of Ir.Lir.binop
  | Unop of Ir.Lir.unop
  | Goto of int
  | If_cmp of cmp * int (* pops b then a; branch when [a cmp b] *)
  | If of cmp * int (* pops a; branch when [a cmp 0] *)
  | Switch of (int * int) list * int (* cases, default *)
  | Get_field of Ir.Lir.field_ref (* pops obj, pushes value *)
  | Put_field of Ir.Lir.field_ref (* pops value then obj *)
  | Get_static of Ir.Lir.field_ref
  | Put_static of Ir.Lir.field_ref
  | New of string
  | New_array (* pops length *)
  | Array_load (* pops index then array *)
  | Array_store (* pops value, index, array *)
  | Array_length
  | Invoke_static of Ir.Lir.method_ref * int * bool (* argc, has result *)
  | Invoke_virtual of Ir.Lir.method_ref * int * bool
      (* argc excluding receiver; pops argc + 1 *)
  | Intrinsic of string * int * bool (* name, argc, has result *)
  | Return
  | Return_value

(* Stack effect: (pops, pushes). *)
let stack_effect = function
  | Const _ | Load _ -> (0, 1)
  | Store _ | Pop -> (1, 0)
  | Dup -> (1, 2)
  | Swap -> (2, 2)
  | Binop _ -> (2, 1)
  | Unop _ -> (1, 1)
  | Goto _ -> (0, 0)
  | If_cmp _ -> (2, 0)
  | If _ -> (1, 0)
  | Switch _ -> (1, 0)
  | Get_field _ -> (1, 1)
  | Put_field _ -> (2, 0)
  | Get_static _ -> (0, 1)
  | Put_static _ -> (1, 0)
  | New _ -> (0, 1)
  | New_array -> (1, 1)
  | Array_load -> (2, 1)
  | Array_store -> (3, 0)
  | Array_length -> (1, 1)
  | Invoke_static (_, argc, res) -> (argc, if res then 1 else 0)
  | Invoke_virtual (_, argc, res) -> (argc + 1, if res then 1 else 0)
  | Intrinsic (_, argc, res) -> (argc, if res then 1 else 0)
  | Return -> (0, 0)
  | Return_value -> (1, 0)

(* Branch targets; [None] elements never occur (kept simple on purpose). *)
let branch_targets = function
  | Goto t -> [ t ]
  | If_cmp (_, t) | If (_, t) -> [ t ]
  | Switch (cases, d) -> List.map snd cases @ [ d ]
  | _ -> []

let falls_through = function
  | Goto _ | Switch _ | Return | Return_value -> false
  | _ -> true

let is_unconditional_exit i = not (falls_through i)

let cmp_to_binop = function
  | Ceq -> Ir.Lir.Eq
  | Cne -> Ir.Lir.Ne
  | Clt -> Ir.Lir.Lt
  | Cle -> Ir.Lir.Le
  | Cgt -> Ir.Lir.Gt
  | Cge -> Ir.Lir.Ge
