(** Bytecode-to-LIR translation.

    Uses the classic baseline-compiler scheme (as Jalapeno's compilers do):
    local slot [s] lives in register [s]; operand-stack depth [d] lives in
    register [max_locals + d].  Because the verifier guarantees consistent
    stack depths at merges, no phi functions are needed. *)

val method_to_func :
  cls:string -> Classfile.meth -> Ir.Lir.func
(** Raises [Failure] when the method does not verify. *)

val program_to_funcs : Classfile.program -> Ir.Lir.func list
(** Every method of every class, verified and translated. *)
