lib/bytecode/bverify.ml: Array Bc Classfile List Printf Queue
