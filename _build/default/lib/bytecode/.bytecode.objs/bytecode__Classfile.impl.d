lib/bytecode/classfile.ml: Array Bc List Option String
