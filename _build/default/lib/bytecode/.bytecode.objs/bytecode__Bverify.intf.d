lib/bytecode/bverify.mli: Classfile
