lib/bytecode/bc.ml: Ir List
