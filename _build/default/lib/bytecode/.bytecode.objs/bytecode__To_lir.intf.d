lib/bytecode/to_lir.mli: Classfile Ir
