lib/bytecode/to_lir.ml: Array Bc Bverify Classfile Ir List Queue
