(* Class-file analog: the unit the jasm frontend produces and the VM links.

   Single inheritance, instance and static int-or-reference fields (the VM
   is untyped at this level), static and virtual methods.  No interfaces,
   no constructors (fields zero-initialise), no exceptions. *)

type meth = {
  mname : string;
  static : bool;
  n_args : int; (* not counting the receiver *)
  returns : bool;
  max_locals : int; (* includes argument slots; slot 0 = receiver if virtual *)
  code : Bc.instr array;
}

type cls = {
  cname : string;
  super : string option;
  fields : string list; (* instance fields declared by this class *)
  static_fields : string list;
  methods : meth list;
}

type program = cls list

let find_class (p : program) name =
  List.find_opt (fun c -> String.equal c.cname name) p

let find_method (c : cls) name =
  List.find_opt (fun m -> String.equal m.mname name) c.methods

(* Walk the superclass chain, most-derived first. *)
let rec ancestry (p : program) (c : cls) =
  match c.super with
  | None -> [ c ]
  | Some s -> (
      match find_class p s with
      | None -> [ c ]
      | Some sc -> c :: ancestry p sc)

(* Method resolution for virtual dispatch: most-derived definition wins.
   [resolve_method_owner] also reports which class declares it. *)
let resolve_method_owner (p : program) ~cls ~name =
  match find_class p cls with
  | None -> None
  | Some c ->
      List.find_map
        (fun c ->
          Option.map (fun m -> (c.cname, m)) (find_method c name))
        (ancestry p c)

let resolve_method (p : program) ~cls ~name =
  Option.map snd (resolve_method_owner p ~cls ~name)

(* All instance fields of a class including inherited ones, base-first, which
   fixes the field layout (index of each field in the object). *)
let instance_layout (p : program) (c : cls) =
  List.concat_map
    (fun c -> List.map (fun f -> (c.cname, f)) c.fields)
    (List.rev (ancestry p c))

let total_code_size (p : program) =
  List.fold_left
    (fun acc c ->
      List.fold_left (fun acc m -> acc + Array.length m.code) acc c.methods)
    0 p
