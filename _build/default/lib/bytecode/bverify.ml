type error = { at : int; msg : string }

let check_method (m : Classfile.meth) =
  let n = Array.length m.code in
  let exception Err of error in
  let fail at msg = raise (Err { at; msg }) in
  try
    if n = 0 then fail 0 "empty code";
    (* last instruction must not fall through past the end *)
    if Bc.falls_through m.code.(n - 1) then fail (n - 1) "falls off the end";
    let depth = Array.make n (-1) in
    let max_seen = ref 0 in
    let worklist = Queue.create () in
    let visit at d =
      if at < 0 || at >= n then fail at "jump target out of range"
      else if depth.(at) = -1 then begin
        depth.(at) <- d;
        Queue.add at worklist
      end
      else if depth.(at) <> d then
        fail at
          (Printf.sprintf "inconsistent stack depth at merge: %d vs %d"
             depth.(at) d)
    in
    visit 0 0;
    while not (Queue.is_empty worklist) do
      let at = Queue.pop worklist in
      let i = m.code.(at) in
      let pops, pushes = Bc.stack_effect i in
      let d = depth.(at) in
      if d < pops then fail at "stack underflow";
      let d' = d - pops + pushes in
      if d' > !max_seen then max_seen := d';
      (match i with
      | Bc.Load s | Bc.Store s ->
          if s < 0 || s >= m.max_locals then fail at "local slot out of range"
      | Bc.Return ->
          if m.returns then fail at "plain return in value-returning method"
      | Bc.Return_value ->
          if not m.returns then fail at "value return in void method"
      | _ -> ());
      List.iter (fun t -> visit t d') (Bc.branch_targets i);
      if Bc.falls_through i then visit (at + 1) d'
    done;
    Ok !max_seen
  with Err e -> Error e

let check_program (p : Classfile.program) =
  List.concat_map
    (fun (c : Classfile.cls) ->
      List.filter_map
        (fun (m : Classfile.meth) ->
          match check_method m with
          | Ok _ -> None
          | Error e -> Some (c.Classfile.cname ^ "." ^ m.Classfile.mname, e))
        c.Classfile.methods)
    p

let max_stack m =
  match check_method m with
  | Ok d -> d
  | Error e ->
      failwith
        (Printf.sprintf "Bverify: %s at %d: %s" m.Classfile.mname e.at e.msg)
