let is_dead (b : Lir.block) = b.role = Lir.Dead

let dedup labels =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun l ->
      if Hashtbl.mem seen l then false
      else (
        Hashtbl.add seen l ();
        true))
    labels

let succs f l =
  let b = Lir.block f l in
  if is_dead b then [] else dedup (Lir.succs_of_term b.term)

let predecessors f =
  let n = Lir.num_blocks f in
  let preds = Array.make n [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> preds.(v) <- u :: preds.(v)) (succs f u)
  done;
  Array.map (fun l -> List.sort_uniq compare l) preds

let postorder f =
  let n = Lir.num_blocks f in
  let visited = Array.make n false in
  let order = ref [] in
  let rec go l =
    if not visited.(l) then (
      visited.(l) <- true;
      List.iter go (succs f l);
      order := l :: !order)
  in
  if n > 0 && not (is_dead (Lir.block f f.entry)) then go f.entry;
  (* [order] is built by prepending after children: it is reverse postorder *)
  !order

let reverse_postorder f = postorder f

let reachable f =
  let n = Lir.num_blocks f in
  let seen = Array.make n false in
  List.iter (fun l -> seen.(l) <- true) (reverse_postorder f);
  seen

let edges f =
  let acc = ref [] in
  let r = reachable f in
  for u = Lir.num_blocks f - 1 downto 0 do
    if r.(u) then List.iter (fun v -> acc := (u, v) :: !acc) (succs f u)
  done;
  !acc

let flood next f seeds =
  let n = Lir.num_blocks f in
  let seen = Array.make n false in
  let rec go l =
    if (not seen.(l)) && not (is_dead (Lir.block f l)) then (
      seen.(l) <- true;
      List.iter go (next l))
  in
  List.iter go seeds;
  seen

let reachable_from f seeds = flood (succs f) f seeds

let reaching_to f seeds =
  let preds = predecessors f in
  flood (fun l -> preds.(l)) f seeds

let remove_unreachable f =
  let r = reachable f in
  let removed = ref 0 in
  Array.iteri
    (fun l live ->
      if (not live) && not (is_dead (Lir.block f l)) then (
        incr removed;
        Lir.set_block f l Lir.dead_block))
    r;
  !removed
