(** Well-formedness checks for LIR functions.

    Run after every frontend translation, optimizer pass and instrumentation
    transform in tests; cheap enough to keep on in the harness as well. *)

type error = { where : string; what : string }

val check : Lir.func -> error list
(** Structural checks: entry exists and is live; every successor label is in
    range and not [Dead]; registers are below [next_reg]; every parameter
    register is distinct; [Check] terminators only appear in non-[Dup]
    blocks; call sites are non-negative. *)

val check_exn : Lir.func -> unit
(** Raises [Failure] with a readable message when {!check} finds errors. *)
