type error = { where : string; what : string }

let check (f : Lir.func) =
  let errs = ref [] in
  let err where what = errs := { where; what } :: !errs in
  let n = Lir.num_blocks f in
  let fname = Lir.string_of_method_ref f.Lir.fname in
  if n = 0 then err fname "function has no blocks"
  else begin
    if f.Lir.entry < 0 || f.Lir.entry >= n then err fname "entry out of range"
    else if (Lir.block f f.Lir.entry).Lir.role = Lir.Dead then
      err fname "entry block is dead";
    let check_reg where r =
      if r < 0 || r >= f.Lir.next_reg then
        err where (Printf.sprintf "register r%d out of range" r)
    in
    let check_operand where = function
      | Lir.Reg r -> check_reg where r
      | Lir.Imm _ -> ()
    in
    List.iter (check_reg (fname ^ " params")) f.Lir.params;
    let sorted = List.sort compare f.Lir.params in
    let rec dups = function
      | a :: b :: _ when a = b -> true
      | _ :: t -> dups t
      | [] -> false
    in
    if dups sorted then err fname "duplicate parameter registers";
    for l = 0 to n - 1 do
      let b = Lir.block f l in
      if b.Lir.role <> Lir.Dead then begin
        let where = Printf.sprintf "%s L%d" fname l in
        Array.iter
          (fun i ->
            List.iter (check_reg where) (Lir.defs_of_instr i);
            List.iter (check_reg where) (Lir.uses_of_instr i);
            match i with
            | Lir.Call { site; _ } when site < 0 ->
                err where "negative call site"
            | _ -> ())
          b.Lir.instrs;
        List.iter (check_operand where)
          (List.map (fun r -> Lir.Reg r) (Lir.uses_of_term b.Lir.term));
        List.iter
          (fun s ->
            if s < 0 || s >= n then
              err where (Printf.sprintf "successor L%d out of range" s)
            else if (Lir.block f s).Lir.role = Lir.Dead then
              err where (Printf.sprintf "successor L%d is dead" s))
          (Lir.succs_of_term b.Lir.term);
        match (b.Lir.term, b.Lir.role) with
        | Lir.Check _, Lir.Dup ->
            err where "check terminator inside duplicated code"
        | _ -> ()
      end
    done
  end;
  List.rev !errs

let check_exn f =
  match check f with
  | [] -> ()
  | errs ->
      let msg =
        String.concat "; "
          (List.map (fun e -> e.where ^ ": " ^ e.what) errs)
      in
      failwith ("Ir.Verify: " ^ msg)
