(** Loop and backedge analysis.

    The sampling framework places checks on method entries and backedges
    (paper section 2).  For check placement we use {!retreating_edges}: every
    cycle in the CFG contains at least one retreating edge, which is what
    guarantees a bounded amount of execution between checks (the property
    the paper relies on).  On reducible CFGs — and both of our frontends
    only emit reducible CFGs — retreating edges coincide with
    {!natural_backedges}; a property test checks this. *)

val retreating_edges : Lir.func -> (Lir.label * Lir.label) list
(** Edges (u, v) such that v is an ancestor of u in a DFS spanning tree
    (self-loops included). *)

val natural_backedges : Lir.func -> (Lir.label * Lir.label) list
(** Edges (u, v) such that v dominates u. *)

val is_reducible : Lir.func -> bool
(** True when every retreating edge is a natural backedge. *)

val loop_headers : Lir.func -> Lir.label list
(** Targets of retreating edges, deduplicated. *)
