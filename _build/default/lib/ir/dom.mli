(** Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm). *)

type t

val compute : Lir.func -> t
(** Immediate dominators of every block reachable from the entry. *)

val idom : t -> Lir.label -> Lir.label option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val dominates : t -> Lir.label -> Lir.label -> bool
(** [dominates t a b] is true when [a] dominates [b] ([a = b] included).
    False when either block is unreachable. *)
