(** Structural CFG editing used by the frontends, the optimizer and the
    instrumentation transforms. *)

val retarget_term : Lir.terminator -> from_:Lir.label -> to_:Lir.label -> Lir.terminator
(** Replace every occurrence of [from_] among the successor labels. *)

val split_edge :
  Lir.func -> src:Lir.label -> dst:Lir.label -> role:Lir.role ->
  instrs:Lir.instr list -> Lir.label
(** Insert a fresh block [b] with the given instructions and [Goto dst] on
    the edge [src -> dst]; [src]'s terminator is retargeted to [b].
    Returns [b]'s label.  Raises [Invalid_argument] if the edge does not
    exist. *)

val insert_before : Lir.func -> Lir.label -> int -> Lir.instr list -> unit
(** [insert_before f l i is] inserts [is] in block [l] so that they execute
    immediately before the instruction currently at index [i]
    ([i] may equal the instruction count: append at the end). *)

val prepend : Lir.func -> Lir.label -> Lir.instr list -> unit
(** Insert at the start of the block. *)

val clone_blocks :
  Lir.func -> role:Lir.role -> (Lir.label -> bool) ->
  (Lir.label * Lir.label) list
(** [clone_blocks f ~role keep] appends a copy of every non-[Dead] block [l]
    with [keep l] true, returning the association original -> clone.
    Terminator targets pointing to a cloned block are redirected to the
    clone; targets outside the cloned set are preserved.  Instrumentation
    payloads are left untouched: profiles stay keyed by original labels. *)

val filter_instrs : Lir.func -> Lir.label -> (Lir.instr -> bool) -> unit
(** Keep only the instructions satisfying the predicate. *)
