let binop_name : Lir.binop -> string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let unop_name : Lir.unop -> string = function Neg -> "neg" | Not -> "not"

let operand ppf = function
  | Lir.Reg r -> Format.fprintf ppf "r%d" r
  | Lir.Imm i -> Format.fprintf ppf "#%d" i

let dst_opt ppf = function
  | Some r -> Format.fprintf ppf "r%d = " r
  | None -> ()

let payload ppf = function
  | Lir.P_unit -> ()
  | Lir.P_field (f, w) ->
      Format.fprintf ppf " %s%s" (Lir.string_of_field_ref f)
        (if w then "!w" else "!r")
  | Lir.P_edge (a, b) -> Format.fprintf ppf " L%d->L%d" a b
  | Lir.P_operand op -> Format.fprintf ppf " %a" operand op
  | Lir.P_value (op, s) -> Format.fprintf ppf " %a@%d" operand op s
  | Lir.P_site s -> Format.fprintf ppf " @%d" s

let instr ppf : Lir.instr -> unit = function
  | Move (r, a) -> Format.fprintf ppf "r%d = %a" r operand a
  | Unop (r, op, a) ->
      Format.fprintf ppf "r%d = %s %a" r (unop_name op) operand a
  | Binop (r, op, a, b) ->
      Format.fprintf ppf "r%d = %s %a, %a" r (binop_name op) operand a operand b
  | Get_field (r, o, fld) ->
      Format.fprintf ppf "r%d = getfield %a.%s" r operand o
        (Lir.string_of_field_ref fld)
  | Put_field (o, fld, v) ->
      Format.fprintf ppf "putfield %a.%s = %a" operand o
        (Lir.string_of_field_ref fld) operand v
  | Get_static (r, fld) ->
      Format.fprintf ppf "r%d = getstatic %s" r (Lir.string_of_field_ref fld)
  | Put_static (fld, v) ->
      Format.fprintf ppf "putstatic %s = %a" (Lir.string_of_field_ref fld)
        operand v
  | New_object (r, c) -> Format.fprintf ppf "r%d = new %s" r c
  | New_array (r, n) -> Format.fprintf ppf "r%d = newarray %a" r operand n
  | Array_load (r, a, i) ->
      Format.fprintf ppf "r%d = %a[%a]" r operand a operand i
  | Array_store (a, i, v) ->
      Format.fprintf ppf "%a[%a] = %a" operand a operand i operand v
  | Array_length (r, a) -> Format.fprintf ppf "r%d = length %a" r operand a
  | Call { dst; kind; target; args; site } ->
      Format.fprintf ppf "%acall%s %s(%a) @%d" dst_opt dst
        (match kind with Lir.Static -> "" | Lir.Virtual -> "v")
        (Lir.string_of_method_ref target)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           operand)
        args site
  | Intrinsic { dst; name; args } ->
      Format.fprintf ppf "%aintrinsic %s(%a)" dst_opt dst name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           operand)
        args
  | Instance_test (r, o, c) ->
      Format.fprintf ppf "r%d = %a instanceof %s" r operand o c
  | Yieldpoint Yp_entry -> Format.fprintf ppf "yieldpoint(entry)"
  | Yieldpoint Yp_backedge -> Format.fprintf ppf "yieldpoint(backedge)"
  | Instrument op -> Format.fprintf ppf "instrument %s%a" op.hook payload op.payload
  | Guarded_instrument op ->
      Format.fprintf ppf "guarded-instrument %s%a" op.hook payload op.payload

let terminator ppf : Lir.terminator -> unit = function
  | Goto l -> Format.fprintf ppf "goto L%d" l
  | If { cond; if_true; if_false } ->
      Format.fprintf ppf "if %a then L%d else L%d" operand cond if_true if_false
  | Switch { scrut; cases; default } ->
      Format.fprintf ppf "switch %a [%a] default L%d" operand scrut
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf (c, l) -> Format.fprintf ppf "%d->L%d" c l))
        cases default
  | Return None -> Format.fprintf ppf "return"
  | Return (Some v) -> Format.fprintf ppf "return %a" operand v
  | Check { on_sample; fall } ->
      Format.fprintf ppf "check sample:L%d fall:L%d" on_sample fall

let role_name : Lir.role -> string = function
  | Orig -> ""
  | Dup -> " (dup)"
  | Check_block -> " (check)"
  | Dead -> " (dead)"

let block ppf ((l, b) : Lir.label * Lir.block) =
  Format.fprintf ppf "@[<v 2>L%d%s:" l (role_name b.Lir.role);
  Array.iter (fun i -> Format.fprintf ppf "@,%a" instr i) b.Lir.instrs;
  Format.fprintf ppf "@,%a@]" terminator b.Lir.term

let func ppf (f : Lir.func) =
  Format.fprintf ppf "@[<v>func %s(%a) entry L%d"
    (Lir.string_of_method_ref f.Lir.fname)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf r -> Format.fprintf ppf "r%d" r))
    f.Lir.params f.Lir.entry;
  Vec.iteri
    (fun l b ->
      if b.Lir.role <> Lir.Dead then Format.fprintf ppf "@,%a" block (l, b))
    f.Lir.blocks;
  Format.fprintf ppf "@]"

let func_to_string f = Format.asprintf "%a" func f
