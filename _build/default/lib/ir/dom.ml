type t = {
  entry : Lir.label;
  idoms : int array; (* -1 = unreachable / entry *)
  rpo_index : int array; (* position in reverse postorder; -1 = unreachable *)
}

let compute f =
  let n = Lir.num_blocks f in
  let rpo = Array.of_list (Cfg.reverse_postorder f) in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i l -> rpo_index.(l) <- i) rpo;
  let preds = Cfg.predecessors f in
  let idoms = Array.make n (-1) in
  if Array.length rpo > 0 then begin
    idoms.(f.Lir.entry) <- f.Lir.entry;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_index.(!a) > rpo_index.(!b) do
          a := idoms.(!a)
        done;
        while rpo_index.(!b) > rpo_index.(!a) do
          b := idoms.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> f.Lir.entry then begin
            let processed =
              List.filter
                (fun p -> rpo_index.(p) >= 0 && idoms.(p) >= 0)
                preds.(b)
            in
            match processed with
            | [] -> ()
            | first :: rest ->
                let new_idom = List.fold_left intersect first rest in
                if idoms.(b) <> new_idom then begin
                  idoms.(b) <- new_idom;
                  changed := true
                end
          end)
        rpo
    done;
    idoms.(f.Lir.entry) <- -1
  end;
  { entry = f.Lir.entry; idoms; rpo_index }

let idom t l =
  if l = t.entry then None
  else match t.idoms.(l) with -1 -> None | d -> Some d

let dominates t a b =
  if t.rpo_index.(a) < 0 || t.rpo_index.(b) < 0 then false
  else begin
    (* walk up the dominator tree from b *)
    let rec go x = if x = a then true else if x = t.entry then false
      else match t.idoms.(x) with -1 -> false | d -> go d
    in
    go b
  end
