let retarget_term t ~from_ ~to_ =
  Lir.map_term_labels (fun l -> if l = from_ then to_ else l) t

let split_edge f ~src ~dst ~role ~instrs =
  let b = Lir.block f src in
  if not (List.mem dst (Lir.succs_of_term b.Lir.term)) then
    invalid_arg
      (Printf.sprintf "Edit.split_edge: no edge %d -> %d" src dst);
  let fresh =
    Lir.add_block f
      { Lir.instrs = Array.of_list instrs; term = Lir.Goto dst; role }
  in
  Lir.set_block f src
    { b with Lir.term = retarget_term b.Lir.term ~from_:dst ~to_:fresh };
  fresh

let insert_before f l i is =
  let b = Lir.block f l in
  let n = Array.length b.Lir.instrs in
  if i < 0 || i > n then invalid_arg "Edit.insert_before: bad index";
  let extra = Array.of_list is in
  let out = Array.make (n + Array.length extra) (Lir.Yieldpoint Lir.Yp_entry) in
  Array.blit b.Lir.instrs 0 out 0 i;
  Array.blit extra 0 out i (Array.length extra);
  Array.blit b.Lir.instrs i out (i + Array.length extra) (n - i);
  Lir.set_block f l { b with Lir.instrs = out }

let prepend f l is = insert_before f l 0 is

let clone_blocks f ~role keep =
  let n = Lir.num_blocks f in
  let mapping = ref [] in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead && keep l then begin
      let clone = Lir.add_block f { b with Lir.role = role } in
      mapping := (l, clone) :: !mapping
    end
  done;
  let mapping = List.rev !mapping in
  let redirect l =
    match List.assoc_opt l mapping with Some c -> c | None -> l
  in
  List.iter
    (fun (_, clone) ->
      let b = Lir.block f clone in
      Lir.set_block f clone
        { b with Lir.term = Lir.map_term_labels redirect b.Lir.term })
    mapping;
  mapping

let filter_instrs f l p =
  let b = Lir.block f l in
  Lir.set_block f l
    { b with Lir.instrs = Array.of_list (List.filter p (Array.to_list b.Lir.instrs)) }
