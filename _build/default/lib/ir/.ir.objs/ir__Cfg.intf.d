lib/ir/cfg.mli: Lir
