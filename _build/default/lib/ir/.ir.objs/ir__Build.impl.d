lib/ir/build.ml: Array Lir List Printf Vec
