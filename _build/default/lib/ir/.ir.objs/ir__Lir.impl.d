lib/ir/lir.ml: Array List String Vec
