lib/ir/pp.mli: Format Lir
