lib/ir/vec.mli:
