lib/ir/dom.ml: Array Cfg Lir List
