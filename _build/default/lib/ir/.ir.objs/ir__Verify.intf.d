lib/ir/verify.mli: Lir
