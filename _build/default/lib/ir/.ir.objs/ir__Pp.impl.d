lib/ir/pp.ml: Array Format Lir Vec
