lib/ir/dom.mli: Lir
