lib/ir/edit.mli: Lir
