lib/ir/build.mli: Lir
