lib/ir/verify.ml: Array Lir List Printf String
