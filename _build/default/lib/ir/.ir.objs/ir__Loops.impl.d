lib/ir/loops.ml: Array Cfg Dom Lir List
