lib/ir/edit.ml: Array Lir List Printf
