lib/ir/loops.mli: Lir
