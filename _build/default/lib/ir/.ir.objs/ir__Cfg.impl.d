lib/ir/cfg.ml: Array Hashtbl Lir List
