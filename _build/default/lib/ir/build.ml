type proto_block = {
  mutable rev_instrs : Lir.instr list;
  mutable term : Lir.terminator option;
}

type t = {
  name : Lir.method_ref;
  n_params : int;
  blocks : proto_block Vec.t;
  mutable next_reg : int;
}

let create ?n_regs ~name ~n_params () =
  let n_regs = match n_regs with None -> n_params | Some n -> max n n_params in
  { name; n_params; blocks = Vec.create (); next_reg = n_regs }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_block t = Vec.push t.blocks { rev_instrs = []; term = None }

let emit t l i =
  let b = Vec.get t.blocks l in
  b.rev_instrs <- i :: b.rev_instrs

let set_term t l term =
  let b = Vec.get t.blocks l in
  match b.term with
  | Some _ -> failwith (Printf.sprintf "Ir.Build: L%d already terminated" l)
  | None -> b.term <- Some term

let has_term t l = (Vec.get t.blocks l).term <> None

let finish t ~entry =
  let blocks = Vec.create () in
  Vec.iteri
    (fun l pb ->
      match pb.term with
      | None -> failwith (Printf.sprintf "Ir.Build: L%d has no terminator" l)
      | Some term ->
          ignore
            (Vec.push blocks
               {
                 Lir.instrs = Array.of_list (List.rev pb.rev_instrs);
                 term;
                 role = Lir.Orig;
               }))
    t.blocks;
  {
    Lir.fname = t.name;
    params = List.init t.n_params (fun i -> i);
    blocks;
    entry;
    next_reg = t.next_reg;
  }
