(** Control-flow-graph queries over a {!Lir.func}.

    All functions treat [Dead] blocks as absent: they have no successors and
    never appear in traversals. *)

val succs : Lir.func -> Lir.label -> Lir.label list
(** Successor labels, deduplicated, branch order preserved. *)

val predecessors : Lir.func -> Lir.label list array
(** [predecessors f] is an array mapping each label to its predecessor
    labels (deduplicated, ascending). *)

val reverse_postorder : Lir.func -> Lir.label list
(** Reverse postorder of the blocks reachable from the entry. *)

val reachable : Lir.func -> bool array
(** [reachable f] marks labels reachable from the entry. *)

val edges : Lir.func -> (Lir.label * Lir.label) list
(** All CFG edges (u, v) among reachable blocks, deduplicated. *)

val reachable_from : Lir.func -> Lir.label list -> bool array
(** Forward reachability from a seed set (seeds included). *)

val reaching_to : Lir.func -> Lir.label list -> bool array
(** Backward reachability to a seed set (seeds included). *)

val remove_unreachable : Lir.func -> int
(** Replaces unreachable blocks with [Dead] placeholders (labels are kept
    stable). Returns the number of blocks removed. *)
