(** Pretty-printing of LIR (for debugging, tests and the CLI). *)

val operand : Format.formatter -> Lir.operand -> unit
val instr : Format.formatter -> Lir.instr -> unit
val terminator : Format.formatter -> Lir.terminator -> unit
val block : Format.formatter -> Lir.label * Lir.block -> unit
val func : Format.formatter -> Lir.func -> unit

val func_to_string : Lir.func -> string
