let retreating_edges f =
  let n = Lir.num_blocks f in
  if n = 0 then []
  else begin
    let color = Array.make n 0 in
    (* 0 = white, 1 = on stack, 2 = done *)
    let acc = ref [] in
    let rec go u =
      color.(u) <- 1;
      List.iter
        (fun v ->
          if color.(v) = 1 then acc := (u, v) :: !acc
          else if color.(v) = 0 then go v)
        (Cfg.succs f u);
      color.(u) <- 2
    in
    if (Lir.block f f.Lir.entry).Lir.role <> Lir.Dead then go f.Lir.entry;
    List.rev !acc
  end

let natural_backedges f =
  let dom = Dom.compute f in
  List.filter (fun (u, v) -> Dom.dominates dom v u) (Cfg.edges f)

let is_reducible f =
  let nat = natural_backedges f in
  List.for_all (fun e -> List.mem e nat) (retreating_edges f)

let loop_headers f =
  List.sort_uniq compare (List.map snd (retreating_edges f))
