(** Imperative builder for {!Lir.func} values.

    Used by the bytecode-to-LIR translator and by tests that construct CFGs
    directly. *)

type t

val create : ?n_regs:int -> name:Lir.method_ref -> n_params:int -> unit -> t
(** Parameters arrive in registers [0 .. n_params - 1].  [n_regs] (default
    [n_params]) preallocates a register range, so callers with a fixed
    register layout (e.g. the bytecode translator's locals + stack slots)
    can refer to those registers directly; {!fresh_reg} starts after it. *)

val fresh_reg : t -> Lir.reg
val new_block : t -> Lir.label
(** Allocates an empty block (terminator must be set before {!finish}). *)

val emit : t -> Lir.label -> Lir.instr -> unit
(** Appends an instruction to the block. *)

val set_term : t -> Lir.label -> Lir.terminator -> unit
(** Sets the terminator; raises [Failure] if already set. *)

val has_term : t -> Lir.label -> bool

val finish : t -> entry:Lir.label -> Lir.func
(** Raises [Failure] when some block lacks a terminator. *)
