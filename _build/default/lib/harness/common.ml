(* Shared experiment configuration. *)

let both_specs = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let sample_intervals = [ 1; 10; 100; 1_000; 10_000; 100_000 ]

let benchmarks () = Workloads.Suite.all

(* Perfect profiles (sample interval 1 — all execution in duplicated code),
   cached per benchmark. *)
let perfect_cache : (string, (string * int) list * (string * int) list) Hashtbl.t
    =
  Hashtbl.create 16

let perfect_profiles (build : Measure.build) =
  let key = build.Measure.bench.Workloads.Suite.bname in
  match Hashtbl.find_opt perfect_cache key with
  | Some p -> p
  | None ->
      let m =
        Measure.run_transformed ~trigger:Core.Sampler.Always
          ~transform:(Core.Transform.full_dup both_specs)
          build
      in
      let p =
        ( Profiles.Call_edge.to_keyed m.Measure.collector.Profiles.Collector.call_edges,
          Profiles.Field_access.to_keyed
            m.Measure.collector.Profiles.Collector.fields )
      in
      Hashtbl.add perfect_cache key p;
      p

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
