let pct f = Printf.sprintf "%.1f" f
let pct1 = pct

let render ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"
