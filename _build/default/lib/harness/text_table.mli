(** Plain-text table rendering for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Columns are right-aligned except the first. *)

val pct : float -> string
(** "7.3" style percent formatting. *)

val pct1 : float -> string
(** One decimal, always signed width-stable. *)
