lib/harness/common.ml: Core Hashtbl List Measure Profiles Workloads
