lib/harness/experiments.ml: Figure7 Figure8 List Table1 Table2 Table3 Table4 Table5
