lib/harness/table4.ml: Common Core List Measure Printf Profiles Text_table
