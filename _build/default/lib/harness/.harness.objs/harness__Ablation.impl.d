lib/harness/ablation.ml: Common Core Ir List Measure Printf Profiles Text_table Vm Workloads
