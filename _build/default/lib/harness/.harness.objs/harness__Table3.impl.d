lib/harness/table3.ml: Common Core List Measure Text_table Workloads
