lib/harness/measure.mli: Bytecode Core Ir Opt Profiles Workloads
