lib/harness/text_table.ml: List Option Printf String
