lib/harness/measure.ml: Bytecode Core Fun Hashtbl Ir List Opt Printf Profiles String Vm Workloads
