lib/harness/table5.ml: Common Core List Measure Profiles Text_table Workloads
