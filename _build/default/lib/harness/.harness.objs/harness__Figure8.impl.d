lib/harness/figure8.ml: Common Core List Measure Text_table Workloads
