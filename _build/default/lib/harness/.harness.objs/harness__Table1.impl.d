lib/harness/table1.ml: Common Core List Measure Text_table Workloads
