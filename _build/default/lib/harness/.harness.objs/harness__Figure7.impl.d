lib/harness/figure7.ml: Common Core List Measure Option Printf Profiles String Text_table Workloads
