lib/harness/table2.ml: Common Core List Measure Opt Text_table Workloads
