lib/vm/costs.ml:
