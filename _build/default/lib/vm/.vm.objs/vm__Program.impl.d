lib/vm/program.ml: Array Bytecode Hashtbl Ir List Printf
