lib/vm/icache.ml: Array
