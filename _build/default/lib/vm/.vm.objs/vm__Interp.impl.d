lib/vm/interp.ml: Array Buffer Costs Hashtbl Icache Ir List Option Printf Program String
