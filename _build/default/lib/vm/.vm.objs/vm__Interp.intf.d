lib/vm/interp.mli: Costs Ir Program
