lib/vm/program.mli: Bytecode Hashtbl Ir
