lib/vm/icache.mli:
