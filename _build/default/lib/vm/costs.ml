(* Cycle-cost model.

   This is the substitution for wall-clock measurement on the paper's
   PowerPC testbed (DESIGN.md section 5): overhead percentages are ratios
   of cycle counts, so what matters is the *relative* cost of the check
   sequence, the yieldpoint sequence, and ordinary instructions.

   The check cost follows the paper's naive implementation: "each check
   performs a memory load, compare, branch, decrement, and store" (5).
   A yieldpoint is a load, compare and branch (4), so the yieldpoint
   optimization of section 4.5 replaces a 4-cycle sequence with a 5-cycle
   one - an almost-free check, as the paper reports. *)

type t = {
  alu : int;
  move : int;
  mem : int; (* field/static/array load or store *)
  branch : int;
  switch : int;
  call_base : int;
  call_per_arg : int;
  ret : int;
  alloc_base : int;
  alloc_per_slot : int;
  yieldpoint : int;
  check : int;
  intrinsic : int;
  icache_miss : int;
  sample_jump : int; (* extra cost of diverting into cold duplicated code *)
}

let default =
  {
    alu = 1;
    move = 1;
    mem = 2;
    branch = 1;
    switch = 2;
    call_base = 14;
    call_per_arg = 1;
    ret = 6;
    alloc_base = 10;
    alloc_per_slot = 1;
    yieldpoint = 4;
    check = 5;
    intrinsic = 10;
    icache_miss = 12;
    sample_jump = 4;
  }

(* A PowerPC-style decrement-and-check single-instruction variant
   (the paper, section 2.2, notes the powerPC "decrement-and-check"
   instruction would collapse the check to one instruction). *)
let hardware_count_register = { default with check = 1 }
