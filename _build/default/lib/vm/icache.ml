type t = {
  tags : int array;
  line_words : int;
  mutable miss_count : int;
  mutable access_count : int;
}

let create ?(lines = 1024) ?(line_words = 8) () =
  { tags = Array.make lines (-1); line_words; miss_count = 0; access_count = 0 }

let access t addr =
  t.access_count <- t.access_count + 1;
  let line_no = addr / t.line_words in
  let idx = line_no mod Array.length t.tags in
  if t.tags.(idx) = line_no then false
  else begin
    t.tags.(idx) <- line_no;
    t.miss_count <- t.miss_count + 1;
    true
  end

let misses t = t.miss_count
let accesses t = t.access_count

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.miss_count <- 0;
  t.access_count <- 0
