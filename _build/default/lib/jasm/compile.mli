(** Frontend driver: jasm source text to verified bytecode classes. *)

val compile_string : ?file:string -> string -> Bytecode.Classfile.program
(** Parse, type-check, generate bytecode, and run the bytecode verifier on
    every method.  Raises [Failure] with a located, human-readable message
    on any error. *)

val compile_to_funcs : ?file:string -> string -> Ir.Lir.func list
(** {!compile_string} followed by translation of every method to LIR. *)
