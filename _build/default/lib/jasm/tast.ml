(* Typed abstract syntax: names resolved to slots / symbolic references,
   every expression annotated with its type.  Produced by [Sema], consumed
   by [Codegen].  [For] is desugared to [While]; blocks are flattened
   (slot allocation is linear, no reuse). *)

type ty = Ast.ty (* with the invariant that every [Tname] names a real class *)

type texpr = { ty : ty; d : desc }

and desc =
  | Tint_lit of int
  | Tbool_lit of bool
  | Tnull
  | Tthis
  | Tvar of int (* local slot *)
  | Tbin of Ast.bin * texpr * texpr
  | Tun of Ast.un * texpr
  | Tfield of texpr * Ir.Lir.field_ref
  | Tstatic_field of Ir.Lir.field_ref
  | Tindex of texpr * texpr
  | Tlen of texpr
  | Tnew of string
  | Tnew_arr of texpr
  | Tcall_static of Ir.Lir.method_ref * texpr list * bool (* has result *)
  | Tcall_virtual of texpr * Ir.Lir.method_ref * texpr list * bool
  | Tintrinsic of string * texpr list * bool

type lval =
  | Lvar of int
  | Lfield of texpr * Ir.Lir.field_ref
  | Lstatic of Ir.Lir.field_ref
  | Lindex of texpr * texpr

type tstmt =
  | Sassign of lval * texpr
  | Sif of texpr * tstmt list * tstmt list
  | Swhile of texpr * tstmt list
  | Sswitch of texpr * (int * tstmt list) list * tstmt list
  | Sreturn of texpr option
  | Sexpr of texpr
  | Sspawn of Ir.Lir.method_ref * texpr list

type tmeth = {
  tm_class : string;
  tm_name : string;
  tm_static : bool;
  tm_n_args : int;
  tm_returns : bool;
  tm_max_locals : int;
  tm_body : tstmt list;
}

type tclass = {
  tc_name : string;
  tc_super : string option;
  tc_fields : string list;
  tc_static_fields : string list;
  tc_meths : tmeth list;
}

type tprogram = tclass list
