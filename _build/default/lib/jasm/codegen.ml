module Bc = Bytecode.Bc
module Classfile = Bytecode.Classfile

(* Bytecode emitter with backpatched labels: forward jump targets are
   emitted as negative placeholders [-(label_id + 1)] and resolved at the
   end, when every label's instruction index is known. *)

type em = {
  mutable rev_code : Bc.instr list;
  mutable len : int;
  label_at : (int, int) Hashtbl.t;
  mutable next_label : int;
}

let make_em () =
  { rev_code = []; len = 0; label_at = Hashtbl.create 16; next_label = 0 }

let emit em i =
  em.rev_code <- i :: em.rev_code;
  em.len <- em.len + 1

let new_label em =
  let l = em.next_label in
  em.next_label <- l + 1;
  l

let define em l = Hashtbl.replace em.label_at l em.len

let enc l = -(l + 1)

let finish em =
  let resolve t =
    if t >= 0 then t
    else
      match Hashtbl.find_opt em.label_at (-t - 1) with
      | Some at -> at
      | None -> failwith "Codegen: undefined label"
  in
  Array.map
    (function
      | Bc.Goto t -> Bc.Goto (resolve t)
      | Bc.If_cmp (c, t) -> Bc.If_cmp (c, resolve t)
      | Bc.If (c, t) -> Bc.If (c, resolve t)
      | Bc.Switch (cases, d) ->
          Bc.Switch (List.map (fun (k, t) -> (k, resolve t)) cases, resolve d)
      | i -> i)
    (Array.of_list (List.rev em.rev_code))

let bin_to_bc : Ast.bin -> Ir.Lir.binop = function
  | Ast.Badd -> Ir.Lir.Add
  | Ast.Bsub -> Ir.Lir.Sub
  | Ast.Bmul -> Ir.Lir.Mul
  | Ast.Bdiv -> Ir.Lir.Div
  | Ast.Brem -> Ir.Lir.Rem
  | Ast.Band -> Ir.Lir.And
  | Ast.Bor -> Ir.Lir.Or
  | Ast.Bxor -> Ir.Lir.Xor
  | Ast.Bshl -> Ir.Lir.Shl
  | Ast.Bshr -> Ir.Lir.Shr
  | Ast.Blt -> Ir.Lir.Lt
  | Ast.Ble -> Ir.Lir.Le
  | Ast.Bgt -> Ir.Lir.Gt
  | Ast.Bge -> Ir.Lir.Ge
  | Ast.Beq -> Ir.Lir.Eq
  | Ast.Bne -> Ir.Lir.Ne
  | Ast.Bland | Ast.Blor -> assert false (* lowered to control flow *)

let rec gen_expr em (e : Tast.texpr) =
  match e.Tast.d with
  | Tast.Tint_lit n -> emit em (Bc.Const n)
  | Tast.Tbool_lit b -> emit em (Bc.Const (if b then 1 else 0))
  | Tast.Tnull -> emit em (Bc.Const 0)
  | Tast.Tthis -> emit em (Bc.Load 0)
  | Tast.Tvar s -> emit em (Bc.Load s)
  | Tast.Tbin (Ast.Bland, a, b) ->
      (* a && b: if a is false the result is 0 without evaluating b *)
      let l_false = new_label em and l_end = new_label em in
      gen_expr em a;
      emit em (Bc.If (Bc.Ceq, enc l_false));
      gen_expr em b;
      emit em (Bc.Goto (enc l_end));
      define em l_false;
      emit em (Bc.Const 0);
      define em l_end
  | Tast.Tbin (Ast.Blor, a, b) ->
      let l_true = new_label em and l_end = new_label em in
      gen_expr em a;
      emit em (Bc.If (Bc.Cne, enc l_true));
      gen_expr em b;
      emit em (Bc.Goto (enc l_end));
      define em l_true;
      emit em (Bc.Const 1);
      define em l_end
  | Tast.Tbin (op, a, b) ->
      gen_expr em a;
      gen_expr em b;
      emit em (Bc.Binop (bin_to_bc op))
  | Tast.Tun (Ast.Uneg, a) ->
      gen_expr em a;
      emit em (Bc.Unop Ir.Lir.Neg)
  | Tast.Tun (Ast.Unot, a) ->
      gen_expr em a;
      emit em (Bc.Unop Ir.Lir.Not)
  | Tast.Tfield (recv, fr) ->
      gen_expr em recv;
      emit em (Bc.Get_field fr)
  | Tast.Tstatic_field fr -> emit em (Bc.Get_static fr)
  | Tast.Tindex (a, i) ->
      gen_expr em a;
      gen_expr em i;
      emit em Bc.Array_load
  | Tast.Tlen a ->
      gen_expr em a;
      emit em Bc.Array_length
  | Tast.Tnew c -> emit em (Bc.New c)
  | Tast.Tnew_arr len ->
      gen_expr em len;
      emit em Bc.New_array
  | Tast.Tcall_static (mref, args, res) ->
      List.iter (gen_expr em) args;
      emit em (Bc.Invoke_static (mref, List.length args, res))
  | Tast.Tcall_virtual (recv, mref, args, res) ->
      gen_expr em recv;
      List.iter (gen_expr em) args;
      emit em (Bc.Invoke_virtual (mref, List.length args, res))
  | Tast.Tintrinsic (name, args, res) ->
      List.iter (gen_expr em) args;
      emit em (Bc.Intrinsic (name, List.length args, res))

let has_result (e : Tast.texpr) =
  match e.Tast.d with
  | Tast.Tcall_static (_, _, res)
  | Tast.Tcall_virtual (_, _, _, res)
  | Tast.Tintrinsic (_, _, res) ->
      res
  | _ -> true

let rec gen_stmt em (s : Tast.tstmt) =
  match s with
  | Tast.Sassign (Tast.Lvar slot, e) ->
      gen_expr em e;
      emit em (Bc.Store slot)
  | Tast.Sassign (Tast.Lfield (recv, fr), e) ->
      gen_expr em recv;
      gen_expr em e;
      emit em (Bc.Put_field fr)
  | Tast.Sassign (Tast.Lstatic fr, e) ->
      gen_expr em e;
      emit em (Bc.Put_static fr)
  | Tast.Sassign (Tast.Lindex (a, i), e) ->
      gen_expr em a;
      gen_expr em i;
      gen_expr em e;
      emit em Bc.Array_store
  | Tast.Sif (cond, then_, else_) ->
      let l_else = new_label em and l_end = new_label em in
      gen_expr em cond;
      emit em (Bc.If (Bc.Ceq, enc l_else));
      List.iter (gen_stmt em) then_;
      emit em (Bc.Goto (enc l_end));
      define em l_else;
      List.iter (gen_stmt em) else_;
      define em l_end
  | Tast.Swhile (cond, body) ->
      let l_cond = new_label em and l_end = new_label em in
      define em l_cond;
      gen_expr em cond;
      emit em (Bc.If (Bc.Ceq, enc l_end));
      List.iter (gen_stmt em) body;
      emit em (Bc.Goto (enc l_cond));
      (* the goto above is the backward branch of the loop *)
      define em l_end
  | Tast.Sswitch (scrut, cases, default) ->
      let l_end = new_label em in
      let l_default = new_label em in
      let labeled = List.map (fun (n, b) -> (n, new_label em, b)) cases in
      gen_expr em scrut;
      emit em
        (Bc.Switch
           (List.map (fun (n, l, _) -> (n, enc l)) labeled, enc l_default));
      List.iter
        (fun (_, l, b) ->
          define em l;
          List.iter (gen_stmt em) b;
          emit em (Bc.Goto (enc l_end)))
        labeled;
      define em l_default;
      List.iter (gen_stmt em) default;
      define em l_end
  | Tast.Sreturn None -> emit em Bc.Return
  | Tast.Sreturn (Some e) ->
      gen_expr em e;
      emit em Bc.Return_value
  | Tast.Sexpr e ->
      gen_expr em e;
      if has_result e then emit em Bc.Pop
  | Tast.Sspawn (mref, args) ->
      List.iter (gen_expr em) args;
      emit em
        (Bc.Intrinsic
           ( Printf.sprintf "spawn:%s" (Ir.Lir.string_of_method_ref mref),
             List.length args,
             false ))

let gen_method (m : Tast.tmeth) : Classfile.meth =
  let em = make_em () in
  List.iter (gen_stmt em) m.Tast.tm_body;
  (* safety tail so no path can fall off the end; unreachable when the body
     definitely returns (sema checked that for value methods) *)
  if m.Tast.tm_returns then begin
    emit em (Bc.Const 0);
    emit em Bc.Return_value
  end
  else emit em Bc.Return;
  {
    Classfile.mname = m.Tast.tm_name;
    static = m.Tast.tm_static;
    n_args = m.Tast.tm_n_args;
    returns = m.Tast.tm_returns;
    max_locals = m.Tast.tm_max_locals;
    code = finish em;
  }

let gen_program (p : Tast.tprogram) : Classfile.program =
  List.map
    (fun (c : Tast.tclass) ->
      {
        Classfile.cname = c.Tast.tc_name;
        super = c.Tast.tc_super;
        fields = c.Tast.tc_fields;
        static_fields = c.Tast.tc_static_fields;
        methods = List.map gen_method c.Tast.tc_meths;
      })
    p
