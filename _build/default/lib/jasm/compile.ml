module Bverify = Bytecode.Bverify
module To_lir = Bytecode.To_lir

let compile_string ?(file = "<jasm>") src =
  let program =
    try Sema.check_program (Parser.parse_program src)
    with Loc.Error (pos, msg) -> failwith (Loc.pp_error ~file pos msg)
  in
  let classes = Codegen.gen_program program in
  (match Bverify.check_program classes with
  | [] -> ()
  | (where, e) :: _ ->
      failwith
        (Printf.sprintf "%s: bytecode verification failed in %s at %d: %s" file
           where e.Bverify.at e.Bverify.msg));
  classes

let compile_to_funcs ?file src =
  To_lir.program_to_funcs (compile_string ?file src)
