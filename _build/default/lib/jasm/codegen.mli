(** Bytecode generation from the typed AST. *)

val gen_method : Tast.tmeth -> Bytecode.Classfile.meth
val gen_program : Tast.tprogram -> Bytecode.Classfile.program
