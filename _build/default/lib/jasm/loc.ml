(* Source positions and located errors for the jasm frontend. *)

type pos = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let to_string p = Printf.sprintf "%d:%d" p.line p.col

exception Error of pos * string

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

let pp_error ?(file = "<jasm>") pos msg =
  Printf.sprintf "%s:%s: %s" file (to_string pos) msg
