(** Recursive-descent parser for jasm.

    Raises [Loc.Error] with a located message on syntax errors. *)

val parse_program : string -> Ast.program
val parse_expr : string -> Ast.expr
(** Parse a standalone expression (for tests). *)
