module Lir = Ir.Lir

(* Pseudo-type of the [null] literal; assignable to any reference type.
   Never escapes into the typed AST as a declared type. *)
let tnull = Ast.Tname "!null"

let is_ref = function Ast.Tname _ | Ast.Tarr _ -> true | _ -> false

type class_info = {
  decl : Ast.class_decl;
  mutable ancestry : string list; (* self first, root last *)
}

type ctx = {
  classes : (string, class_info) Hashtbl.t;
  (* current method context *)
  cls : string;
  static : bool;
  ret : Ast.ty option;
  mutable scopes : (string, int * Ast.ty) Hashtbl.t list;
  mutable next_slot : int;
  mutable max_slot : int;
}

let builtin_sigs =
  [
    ("print", ([ Ast.Tint ], None));
    ("rand", ([ Ast.Tint ], Some Ast.Tint));
    ("yield", ([], None)); (* cooperative thread yield *)
  ]

let class_info ctx pos name =
  match Hashtbl.find_opt ctx.classes name with
  | Some ci -> ci
  | None -> Loc.error pos "unknown class '%s'" name

let rec check_ty ctx pos = function
  | Ast.Tint | Ast.Tbool -> ()
  | Ast.Tname c -> ignore (class_info ctx pos c)
  | Ast.Tarr t -> check_ty ctx pos t

let subtype ctx a b =
  match (a, b) with
  | Ast.Tint, Ast.Tint | Ast.Tbool, Ast.Tbool -> true
  | Ast.Tname c, Ast.Tname d -> (
      c = d
      ||
      match Hashtbl.find_opt ctx.classes c with
      | Some ci -> List.mem d ci.ancestry
      | None -> false)
  | Ast.Tarr x, Ast.Tarr y -> x = y
  | _ -> false

let assignable ctx ~src ~dst = subtype ctx src dst || (src = tnull && is_ref dst)

(* Find the declaring class of instance field [f], starting at class [c]. *)
let find_instance_field ctx pos c f =
  let ci = class_info ctx pos c in
  let declares name =
    let ci = class_info ctx pos name in
    List.find_opt
      (fun (fd : Ast.field_decl) -> (not fd.Ast.f_static) && fd.Ast.f_name = f)
      ci.decl.Ast.c_fields
  in
  List.find_map
    (fun cname ->
      match declares cname with
      | Some fd -> Some ({ Lir.fclass = cname; fname = f }, fd.Ast.f_ty)
      | None -> None)
    ci.ancestry

let find_static_field ctx pos c f =
  let ci = class_info ctx pos c in
  List.find_map
    (fun cname ->
      let ci = class_info ctx pos cname in
      match
        List.find_opt
          (fun (fd : Ast.field_decl) -> fd.Ast.f_static && fd.Ast.f_name = f)
          ci.decl.Ast.c_fields
      with
      | Some fd -> Some ({ Lir.fclass = cname; fname = f }, fd.Ast.f_ty)
      | None -> None)
    ci.ancestry

(* Find a method named [m] reachable from class [c]; returns the declaring
   class and the declaration. *)
let find_method ctx pos c m =
  let ci = class_info ctx pos c in
  List.find_map
    (fun cname ->
      let ci = class_info ctx pos cname in
      match
        List.find_opt (fun (md : Ast.meth_decl) -> md.Ast.m_name = m)
          ci.decl.Ast.c_meths
      with
      | Some md -> Some (cname, md)
      | None -> None)
    ci.ancestry

let lookup_var ctx name =
  List.find_map (fun scope -> Hashtbl.find_opt scope name) ctx.scopes

let declare_var ctx pos name ty =
  match ctx.scopes with
  | [] -> assert false
  | scope :: _ ->
      if Hashtbl.mem scope name then
        Loc.error pos "variable '%s' already declared in this scope" name;
      let slot = ctx.next_slot in
      ctx.next_slot <- slot + 1;
      if ctx.next_slot > ctx.max_slot then ctx.max_slot <- ctx.next_slot;
      Hashtbl.add scope name (slot, ty);
      slot

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> assert false

let te ty d = { Tast.ty; d }

let ty_name = Ast.ty_to_string

let check_int pos (e : Tast.texpr) what =
  if e.Tast.ty <> Ast.Tint then
    Loc.error pos "%s must be int, found %s" what (ty_name e.Tast.ty)

let check_bool pos (e : Tast.texpr) what =
  if e.Tast.ty <> Ast.Tbool then
    Loc.error pos "%s must be bool, found %s" what (ty_name e.Tast.ty)

let rec check_expr ctx (e : Ast.expr) : Tast.texpr =
  let pos = e.Ast.pos in
  match e.Ast.e with
  | Ast.Int n -> te Ast.Tint (Tast.Tint_lit n)
  | Ast.Bool b -> te Ast.Tbool (Tast.Tbool_lit b)
  | Ast.Null -> te tnull Tast.Tnull
  | Ast.This ->
      if ctx.static then Loc.error pos "'this' used in a static method";
      te (Ast.Tname ctx.cls) Tast.Tthis
  | Ast.Ident name -> (
      match lookup_var ctx name with
      | Some (slot, ty) -> te ty (Tast.Tvar slot)
      | None -> (
          (* unqualified field access on the current class *)
          match find_instance_field ctx pos ctx.cls name with
          | Some (fr, ty) when not ctx.static ->
              te ty (Tast.Tfield (te (Ast.Tname ctx.cls) Tast.Tthis, fr))
          | _ -> (
              match find_static_field ctx pos ctx.cls name with
              | Some (fr, ty) -> te ty (Tast.Tstatic_field fr)
              | None -> Loc.error pos "unbound variable '%s'" name)))
  | Ast.Un (op, a) -> (
      let ta = check_expr ctx a in
      match op with
      | Ast.Uneg ->
          check_int pos ta "operand of unary '-'";
          te Ast.Tint (Tast.Tun (op, ta))
      | Ast.Unot ->
          check_bool pos ta "operand of '!'";
          te Ast.Tbool (Tast.Tun (op, ta)))
  | Ast.Bin (op, a, b) -> (
      let ta = check_expr ctx a in
      let tb = check_expr ctx b in
      match op with
      | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Brem | Ast.Band
      | Ast.Bor | Ast.Bxor | Ast.Bshl | Ast.Bshr ->
          check_int pos ta "left operand";
          check_int pos tb "right operand";
          te Ast.Tint (Tast.Tbin (op, ta, tb))
      | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
          check_int pos ta "left operand";
          check_int pos tb "right operand";
          te Ast.Tbool (Tast.Tbin (op, ta, tb))
      | Ast.Beq | Ast.Bne ->
          let ok =
            (ta.Tast.ty = Ast.Tint && tb.Tast.ty = Ast.Tint)
            || (ta.Tast.ty = Ast.Tbool && tb.Tast.ty = Ast.Tbool)
            || (is_ref ta.Tast.ty || ta.Tast.ty = tnull)
               && (is_ref tb.Tast.ty || tb.Tast.ty = tnull)
          in
          if not ok then
            Loc.error pos "cannot compare %s with %s" (ty_name ta.Tast.ty)
              (ty_name tb.Tast.ty);
          te Ast.Tbool (Tast.Tbin (op, ta, tb))
      | Ast.Bland | Ast.Blor ->
          check_bool pos ta "left operand";
          check_bool pos tb "right operand";
          te Ast.Tbool (Tast.Tbin (op, ta, tb)))
  | Ast.Dot (recv, name) -> (
      (* Class.static_field, array.length, or obj.field *)
      match recv.Ast.e with
      | Ast.Ident c when lookup_var ctx c = None && Hashtbl.mem ctx.classes c
        -> (
          match find_static_field ctx pos c name with
          | Some (fr, ty) -> te ty (Tast.Tstatic_field fr)
          | None -> Loc.error pos "class '%s' has no static field '%s'" c name)
      | _ -> (
          let trecv = check_expr ctx recv in
          match trecv.Tast.ty with
          | Ast.Tarr _ when name = "length" -> te Ast.Tint (Tast.Tlen trecv)
          | Ast.Tname c -> (
              match find_instance_field ctx pos c name with
              | Some (fr, ty) -> te ty (Tast.Tfield (trecv, fr))
              | None -> Loc.error pos "class '%s' has no field '%s'" c name)
          | t ->
              Loc.error pos "cannot access field '%s' on value of type %s" name
                (ty_name t)))
  | Ast.Index (arr, idx) -> (
      let tarr = check_expr ctx arr in
      let tidx = check_expr ctx idx in
      check_int pos tidx "array index";
      match tarr.Tast.ty with
      | Ast.Tarr elt -> te elt (Tast.Tindex (tarr, tidx))
      | t -> Loc.error pos "cannot index value of type %s" (ty_name t))
  | Ast.New_obj c ->
      ignore (class_info ctx pos c);
      te (Ast.Tname c) (Tast.Tnew c)
  | Ast.New_arr (elt, len) ->
      check_ty ctx pos elt;
      let tlen = check_expr ctx len in
      check_int pos tlen "array length";
      te (Ast.Tarr elt) (Tast.Tnew_arr tlen)
  | Ast.Call (recv, name, args) -> check_call ctx pos recv name args

and check_call ctx pos recv name args =
  let targs () = List.map (check_expr ctx) args in
  let check_args pos callee params (targs : Tast.texpr list) =
    if List.length params <> List.length targs then
      Loc.error pos "%s expects %d argument(s), got %d" callee
        (List.length params) (List.length targs);
    List.iter2
      (fun (p : Ast.ty) (a : Tast.texpr) ->
        if not (assignable ctx ~src:a.Tast.ty ~dst:p) then
          Loc.error pos "%s: argument of type %s where %s expected" callee
            (ty_name a.Tast.ty) (ty_name p))
      params targs
  in
  let call_resolved ~virt ~recv_expr cls (md : Ast.meth_decl) targs =
    let param_tys = List.map snd md.Ast.m_params in
    check_args pos (cls ^ "." ^ name) param_tys targs;
    let has_result = md.Ast.m_ret <> None in
    let ret_ty = match md.Ast.m_ret with Some t -> t | None -> Ast.Tint in
    let mref = { Lir.mclass = cls; mname = name } in
    let d =
      if virt then
        Tast.Tcall_virtual (Option.get recv_expr, mref, targs, has_result)
      else Tast.Tcall_static (mref, targs, has_result)
    in
    (* void calls are only legal in statement position; [check_stmt]
       tolerates the dummy Tint type below because it discards it *)
    { Tast.ty = (if has_result then ret_ty else Ast.Tint); d }
  in
  match recv with
  | None -> (
      match List.assoc_opt name builtin_sigs with
      | Some (params, ret) ->
          let targs = targs () in
          check_args pos name params targs;
          te
            (match ret with Some t -> t | None -> Ast.Tint)
            (Tast.Tintrinsic (name, targs, ret <> None))
      | None -> (
          match find_method ctx pos ctx.cls name with
          | Some (cls, md) ->
              let targs = targs () in
              if md.Ast.m_static then
                call_resolved ~virt:false ~recv_expr:None cls md targs
              else begin
                if ctx.static then
                  Loc.error pos
                    "cannot call instance method '%s' from a static method"
                    name;
                let this = te (Ast.Tname ctx.cls) Tast.Tthis in
                call_resolved ~virt:true ~recv_expr:(Some this) ctx.cls md targs
              end
          | None -> Loc.error pos "unknown function '%s'" name))
  | Some r -> (
      match r.Ast.e with
      | Ast.Ident c when lookup_var ctx c = None && Hashtbl.mem ctx.classes c
        -> (
          match find_method ctx pos c name with
          | Some (cls, md) when md.Ast.m_static ->
              call_resolved ~virt:false ~recv_expr:None cls md (targs ())
          | Some _ ->
              Loc.error pos "'%s.%s' is an instance method; call it on an object"
                c name
          | None -> Loc.error pos "class '%s' has no method '%s'" c name)
      | _ -> (
          let trecv = check_expr ctx r in
          match trecv.Tast.ty with
          | Ast.Tname c -> (
              match find_method ctx pos c name with
              | Some (_, md) when not md.Ast.m_static ->
                  (* the symbolic target names the static receiver class;
                     the VM dispatches on the runtime class *)
                  call_resolved ~virt:true ~recv_expr:(Some trecv) c md
                    (targs ())
              | Some _ ->
                  Loc.error pos "'%s.%s' is static; call it as %s.%s()" c name
                    c name
              | None -> Loc.error pos "class '%s' has no method '%s'" c name)
          | t ->
              Loc.error pos "cannot call method '%s' on value of type %s" name
                (ty_name t)))

let rec returns_block stmts = List.exists returns_stmt stmts

and returns_stmt = function
  | Tast.Sreturn _ -> true
  | Tast.Sif (_, t, e) -> returns_block t && returns_block e
  | Tast.Sswitch (_, cases, default) ->
      default <> [] && returns_block default
      && List.for_all (fun (_, b) -> returns_block b) cases
  | _ -> false

let rec check_stmt ctx (s : Ast.stmt) : Tast.tstmt list =
  let pos = s.Ast.spos in
  match s.Ast.s with
  | Ast.Decl (name, ty, init) ->
      check_ty ctx pos ty;
      let tinit =
        match init with
        | None -> None
        | Some e ->
            let t = check_expr ctx e in
            if not (assignable ctx ~src:t.Tast.ty ~dst:ty) then
              Loc.error pos "cannot initialise %s variable with %s"
                (ty_name ty) (ty_name t.Tast.ty);
            Some t
      in
      let slot = declare_var ctx pos name ty in
      (match tinit with
      | Some t -> [ Tast.Sassign (Tast.Lvar slot, t) ]
      | None -> [])
  | Ast.Assign (lhs, rhs) ->
      let trhs = check_expr ctx rhs in
      let lval, lty = check_lvalue ctx lhs in
      if not (assignable ctx ~src:trhs.Tast.ty ~dst:lty) then
        Loc.error pos "cannot assign %s to %s" (ty_name trhs.Tast.ty)
          (ty_name lty);
      [ Tast.Sassign (lval, trhs) ]
  | Ast.If (cond, then_, else_) ->
      let tcond = check_expr ctx cond in
      check_bool pos tcond "if condition";
      [ Tast.Sif (tcond, check_block ctx then_, check_block ctx else_) ]
  | Ast.While (cond, body) ->
      let tcond = check_expr ctx cond in
      check_bool pos tcond "while condition";
      [ Tast.Swhile (tcond, check_block ctx body) ]
  | Ast.For (init, cond, step, body) ->
      push_scope ctx;
      let tinit = check_stmt ctx init in
      let tcond = check_expr ctx cond in
      check_bool pos tcond "for condition";
      let tbody = check_block ctx body in
      let tstep = check_stmt ctx step in
      pop_scope ctx;
      tinit @ [ Tast.Swhile (tcond, tbody @ tstep) ]
  | Ast.Switch (scrut, cases, default) ->
      let tscrut = check_expr ctx scrut in
      check_int pos tscrut "switch scrutinee";
      let seen = Hashtbl.create 8 in
      let tcases =
        List.map
          (fun (n, b) ->
            if Hashtbl.mem seen n then Loc.error pos "duplicate case %d" n;
            Hashtbl.add seen n ();
            (n, check_block ctx b))
          cases
      in
      [ Tast.Sswitch (tscrut, tcases, check_block ctx default) ]
  | Ast.Return None ->
      if ctx.ret <> None then Loc.error pos "missing return value";
      [ Tast.Sreturn None ]
  | Ast.Return (Some e) -> (
      let t = check_expr ctx e in
      match ctx.ret with
      | None -> Loc.error pos "void method cannot return a value"
      | Some rty ->
          if not (assignable ctx ~src:t.Tast.ty ~dst:rty) then
            Loc.error pos "return type mismatch: %s where %s expected"
              (ty_name t.Tast.ty) (ty_name rty);
          [ Tast.Sreturn (Some t) ])
  | Ast.Expr e -> (
      let t = check_expr ctx e in
      match t.Tast.d with
      | Tast.Tcall_static _ | Tast.Tcall_virtual _ | Tast.Tintrinsic _ ->
          [ Tast.Sexpr t ]
      | _ -> Loc.error pos "expression statement must be a call")
  | Ast.Scope b ->
      push_scope ctx;
      let r = check_block_no_scope ctx b in
      pop_scope ctx;
      r
  | Ast.Spawn (cls, m, args) -> (
      match find_method ctx pos cls m with
      | Some (dcls, md) when md.Ast.m_static ->
          let targs = List.map (check_expr ctx) args in
          let params = List.map snd md.Ast.m_params in
          if List.length params <> List.length targs then
            Loc.error pos "spawn %s.%s: arity mismatch" cls m;
          List.iter2
            (fun p (a : Tast.texpr) ->
              if not (assignable ctx ~src:a.Tast.ty ~dst:p) then
                Loc.error pos "spawn %s.%s: argument type mismatch" cls m)
            params targs;
          [ Tast.Sspawn ({ Lir.mclass = dcls; mname = m }, targs) ]
      | Some _ -> Loc.error pos "spawn target %s.%s must be static" cls m
      | None -> Loc.error pos "unknown method '%s.%s'" cls m)

and check_lvalue ctx (e : Ast.expr) =
  let pos = e.Ast.pos in
  let t = check_expr ctx e in
  match t.Tast.d with
  | Tast.Tvar slot -> (Tast.Lvar slot, t.Tast.ty)
  | Tast.Tfield (recv, fr) -> (Tast.Lfield (recv, fr), t.Tast.ty)
  | Tast.Tstatic_field fr -> (Tast.Lstatic fr, t.Tast.ty)
  | Tast.Tindex (arr, idx) -> (Tast.Lindex (arr, idx), t.Tast.ty)
  | _ -> Loc.error pos "not assignable"

and check_block ctx b =
  push_scope ctx;
  let r = check_block_no_scope ctx b in
  pop_scope ctx;
  r

and check_block_no_scope ctx b = List.concat_map (check_stmt ctx) b

(* ---- program-level checks ---- *)

let build_class_table (p : Ast.program) =
  let classes = Hashtbl.create 16 in
  List.iter
    (fun (c : Ast.class_decl) ->
      if Hashtbl.mem classes c.Ast.c_name then
        Loc.error c.Ast.c_pos "duplicate class '%s'" c.Ast.c_name;
      Hashtbl.add classes c.Ast.c_name { decl = c; ancestry = [] })
    p;
  (* resolve ancestry, detecting unknown supers and cycles *)
  let rec ancestry_of seen name pos =
    if List.mem name seen then
      Loc.error pos "inheritance cycle involving '%s'" name;
    match Hashtbl.find_opt classes name with
    | None -> Loc.error pos "unknown superclass '%s'" name
    | Some ci -> (
        match ci.decl.Ast.c_super with
        | None -> [ name ]
        | Some s -> name :: ancestry_of (name :: seen) s ci.decl.Ast.c_pos)
  in
  List.iter
    (fun (c : Ast.class_decl) ->
      let ci = Hashtbl.find classes c.Ast.c_name in
      ci.ancestry <- ancestry_of [] c.Ast.c_name c.Ast.c_pos)
    p;
  (* duplicate members *)
  List.iter
    (fun (c : Ast.class_decl) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (f : Ast.field_decl) ->
          if Hashtbl.mem seen f.Ast.f_name then
            Loc.error f.Ast.f_pos "duplicate field '%s'" f.Ast.f_name;
          Hashtbl.add seen f.Ast.f_name ())
        c.Ast.c_fields;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (m : Ast.meth_decl) ->
          if Hashtbl.mem seen m.Ast.m_name then
            Loc.error m.Ast.m_pos "duplicate method '%s'" m.Ast.m_name;
          Hashtbl.add seen m.Ast.m_name ())
        c.Ast.c_meths)
    p;
  classes

(* An override must preserve the signature (the VM dispatches on name). *)
let check_overrides classes (p : Ast.program) =
  List.iter
    (fun (c : Ast.class_decl) ->
      match c.Ast.c_super with
      | None -> ()
      | Some super ->
          List.iter
            (fun (m : Ast.meth_decl) ->
              let ci = Hashtbl.find classes super in
              ignore ci;
              let rec find name =
                match Hashtbl.find_opt classes name with
                | None -> None
                | Some ci -> (
                    match
                      List.find_opt
                        (fun (md : Ast.meth_decl) ->
                          md.Ast.m_name = m.Ast.m_name)
                        ci.decl.Ast.c_meths
                    with
                    | Some md -> Some md
                    | None -> (
                        match ci.decl.Ast.c_super with
                        | Some s -> find s
                        | None -> None))
              in
              match find super with
              | None -> ()
              | Some inherited ->
                  let sig_of (md : Ast.meth_decl) =
                    (md.Ast.m_static, List.map snd md.Ast.m_params, md.Ast.m_ret)
                  in
                  if sig_of inherited <> sig_of m then
                    Loc.error m.Ast.m_pos
                      "method '%s' overrides '%s.%s' with a different signature"
                      m.Ast.m_name super m.Ast.m_name)
            c.Ast.c_meths)
    p

let check_method classes cls_name (m : Ast.meth_decl) : Tast.tmeth =
  let ctx =
    {
      classes;
      cls = cls_name;
      static = m.Ast.m_static;
      ret = m.Ast.m_ret;
      scopes = [];
      next_slot = 0;
      max_slot = 0;
    }
  in
  push_scope ctx;
  if not m.Ast.m_static then begin
    (* slot 0 is the receiver *)
    ctx.next_slot <- 1;
    ctx.max_slot <- 1
  end;
  List.iter
    (fun (name, ty) ->
      check_ty ctx m.Ast.m_pos ty;
      ignore (declare_var ctx m.Ast.m_pos name ty))
    m.Ast.m_params;
  (match m.Ast.m_ret with
  | Some t -> check_ty ctx m.Ast.m_pos t
  | None -> ());
  let body = check_block_no_scope ctx m.Ast.m_body in
  pop_scope ctx;
  if m.Ast.m_ret <> None && not (returns_block body) then
    Loc.error m.Ast.m_pos "method '%s' may not return a value on all paths"
      m.Ast.m_name;
  {
    Tast.tm_class = cls_name;
    tm_name = m.Ast.m_name;
    tm_static = m.Ast.m_static;
    tm_n_args = List.length m.Ast.m_params;
    tm_returns = m.Ast.m_ret <> None;
    tm_max_locals = ctx.max_slot;
    tm_body = body;
  }

let check_program (p : Ast.program) : Tast.tprogram =
  let classes = build_class_table p in
  check_overrides classes p;
  List.map
    (fun (c : Ast.class_decl) ->
      {
        Tast.tc_name = c.Ast.c_name;
        tc_super = c.Ast.c_super;
        tc_fields =
          List.filter_map
            (fun (f : Ast.field_decl) ->
              if f.Ast.f_static then None else Some f.Ast.f_name)
            c.Ast.c_fields;
        tc_static_fields =
          List.filter_map
            (fun (f : Ast.field_decl) ->
              if f.Ast.f_static then Some f.Ast.f_name else None)
            c.Ast.c_fields;
        tc_meths =
          List.map (fun m -> check_method classes c.Ast.c_name m) c.Ast.c_meths;
      })
    p
