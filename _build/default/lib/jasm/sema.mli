(** Semantic analysis: name resolution and type checking.

    Produces the typed AST consumed by {!Codegen}.  Raises [Loc.Error] with
    a located message on any semantic error. *)

val check_program : Ast.program -> Tast.tprogram
