lib/jasm/lexer.mli: Loc Token
