lib/jasm/codegen.ml: Array Ast Bytecode Hashtbl Ir List Printf Tast
