lib/jasm/sema.mli: Ast Tast
