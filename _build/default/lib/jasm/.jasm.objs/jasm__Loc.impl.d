lib/jasm/loc.ml: Printf
