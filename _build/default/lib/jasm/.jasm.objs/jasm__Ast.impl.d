lib/jasm/ast.ml: Loc
