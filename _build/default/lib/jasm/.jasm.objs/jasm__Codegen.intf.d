lib/jasm/codegen.mli: Bytecode Tast
