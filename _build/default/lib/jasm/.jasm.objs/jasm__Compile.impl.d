lib/jasm/compile.ml: Bytecode Codegen Loc Parser Printf Sema
