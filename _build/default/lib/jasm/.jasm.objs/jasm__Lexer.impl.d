lib/jasm/lexer.ml: List Loc String Token
