lib/jasm/sema.ml: Ast Hashtbl Ir List Loc Option Tast
