lib/jasm/tast.ml: Ast Ir
