lib/jasm/parser.ml: Ast Lexer List Loc Token
