lib/jasm/token.ml:
