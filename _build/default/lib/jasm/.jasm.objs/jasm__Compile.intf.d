lib/jasm/compile.mli: Bytecode Ir
