lib/jasm/parser.mli: Ast
