(* Tokens of the jasm language. *)

type t =
  | INT of int
  | IDENT of string
  | KW_class
  | KW_extends
  | KW_var
  | KW_fun
  | KW_static
  | KW_if
  | KW_else
  | KW_while
  | KW_for
  | KW_return
  | KW_new
  | KW_true
  | KW_false
  | KW_null
  | KW_this
  | KW_int
  | KW_bool
  | KW_switch
  | KW_case
  | KW_default
  | KW_spawn
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | DOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMPAMP
  | BARBAR
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | BANG
  | EQEQ
  | BANGEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keyword_table =
  [
    ("class", KW_class);
    ("extends", KW_extends);
    ("var", KW_var);
    ("fun", KW_fun);
    ("static", KW_static);
    ("if", KW_if);
    ("else", KW_else);
    ("while", KW_while);
    ("for", KW_for);
    ("return", KW_return);
    ("new", KW_new);
    ("true", KW_true);
    ("false", KW_false);
    ("null", KW_null);
    ("this", KW_this);
    ("int", KW_int);
    ("bool", KW_bool);
    ("switch", KW_switch);
    ("case", KW_case);
    ("default", KW_default);
    ("spawn", KW_spawn);
  ]

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_class -> "class"
  | KW_extends -> "extends"
  | KW_var -> "var"
  | KW_fun -> "fun"
  | KW_static -> "static"
  | KW_if -> "if"
  | KW_else -> "else"
  | KW_while -> "while"
  | KW_for -> "for"
  | KW_return -> "return"
  | KW_new -> "new"
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_null -> "null"
  | KW_this -> "this"
  | KW_int -> "int"
  | KW_bool -> "bool"
  | KW_switch -> "switch"
  | KW_case -> "case"
  | KW_default -> "default"
  | KW_spawn -> "spawn"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | DOT -> "."
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | BANG -> "!"
  | EQEQ -> "=="
  | BANGEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
