(** Hand-written lexer for jasm ([menhir]/[ocamllex] are not available in
    this environment; see DESIGN.md). *)

type t

val create : string -> t
(** Lex the given source text. *)

val next : t -> Token.t * Loc.pos
(** Consume and return the next token.  Returns [EOF] forever at the end.
    Raises [Loc.Error] on invalid input. *)

val tokenize : string -> (Token.t * Loc.pos) list
(** The whole token stream, [EOF] included (convenience for tests). *)
