type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let create src = { src; off = 0; line = 1; bol = 0 }

let pos lx = { Loc.line = lx.line; col = lx.off - lx.bol + 1 }

let peek_char lx =
  if lx.off < String.length lx.src then Some lx.src.[lx.off] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.off + 1
  | _ -> ());
  lx.off <- lx.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_trivia lx
  | Some '/' when lx.off + 1 < String.length lx.src -> (
      match lx.src.[lx.off + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_trivia lx
      | '*' ->
          let start = pos lx in
          advance lx;
          advance lx;
          let rec eat () =
            match peek_char lx with
            | None -> Loc.error start "unterminated block comment"
            | Some '*' when lx.off + 1 < String.length lx.src
                            && lx.src.[lx.off + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                eat ()
          in
          eat ();
          skip_trivia lx
      | _ -> ())
  | _ -> ()

let lex_number lx =
  let start = lx.off in
  while match peek_char lx with Some c -> is_digit c | None -> false do
    advance lx
  done;
  let s = String.sub lx.src start (lx.off - start) in
  Token.INT (int_of_string s)

let lex_ident lx =
  let start = lx.off in
  while match peek_char lx with Some c -> is_ident_char c | None -> false do
    advance lx
  done;
  let s = String.sub lx.src start (lx.off - start) in
  match List.assoc_opt s Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT s

let next lx =
  skip_trivia lx;
  let p = pos lx in
  let two tok = advance lx; advance lx; tok in
  let one tok = advance lx; tok in
  let second () =
    if lx.off + 1 < String.length lx.src then Some lx.src.[lx.off + 1]
    else None
  in
  let tok =
    match peek_char lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c -> lex_ident lx
    | Some '(' -> one Token.LPAREN
    | Some ')' -> one Token.RPAREN
    | Some '{' -> one Token.LBRACE
    | Some '}' -> one Token.RBRACE
    | Some '[' -> one Token.LBRACKET
    | Some ']' -> one Token.RBRACKET
    | Some ';' -> one Token.SEMI
    | Some ',' -> one Token.COMMA
    | Some ':' -> one Token.COLON
    | Some '.' -> one Token.DOT
    | Some '+' -> one Token.PLUS
    | Some '-' -> one Token.MINUS
    | Some '*' -> one Token.STAR
    | Some '/' -> one Token.SLASH
    | Some '%' -> one Token.PERCENT
    | Some '^' -> one Token.CARET
    | Some '&' -> if second () = Some '&' then two Token.AMPAMP else one Token.AMP
    | Some '|' -> if second () = Some '|' then two Token.BARBAR else one Token.BAR
    | Some '=' -> if second () = Some '=' then two Token.EQEQ else one Token.ASSIGN
    | Some '!' -> if second () = Some '=' then two Token.BANGEQ else one Token.BANG
    | Some '<' ->
        if second () = Some '=' then two Token.LE
        else if second () = Some '<' then two Token.SHL
        else one Token.LT
    | Some '>' ->
        if second () = Some '=' then two Token.GE
        else if second () = Some '>' then two Token.SHR
        else one Token.GT
    | Some c -> Loc.error p "unexpected character %C" c
  in
  (tok, p)

let tokenize src =
  let lx = create src in
  let rec go acc =
    let tok, p = next lx in
    if tok = Token.EOF then List.rev ((tok, p) :: acc)
    else go ((tok, p) :: acc)
  in
  go []
