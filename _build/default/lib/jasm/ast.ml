(* Surface abstract syntax, as produced by the parser (before semantic
   analysis resolves names and checks types). *)

type ty = Tint | Tbool | Tname of string | Tarr of ty

let rec ty_to_string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Tname c -> c
  | Tarr t -> ty_to_string t ^ "[]"

type bin =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Blt
  | Ble
  | Bgt
  | Bge
  | Beq
  | Bne
  | Bland (* short-circuit && *)
  | Blor (* short-circuit || *)

type un = Uneg | Unot

type expr = { e : expr_desc; pos : Loc.pos }

and expr_desc =
  | Int of int
  | Bool of bool
  | Null
  | This
  | Ident of string
  | Bin of bin * expr * expr
  | Un of un * expr
  | Dot of expr * string (* e.f — field access, or array .length *)
  | Call of expr option * string * expr list
      (* receiver.m(args); [None] receiver = bare call (current class or
         builtin).  [Dot (Ident "C", f)] may denote a static field and
         [Call (Some (Ident "C"), m, _)] a static call; the semantic
         analyzer disambiguates, locals shadow class names. *)
  | Index of expr * expr
  | New_obj of string
  | New_arr of ty * expr

type stmt = { s : stmt_desc; spos : Loc.pos }

and stmt_desc =
  | Decl of string * ty * expr option
  | Assign of expr * expr (* lvalue-ness checked by sema *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt * expr * stmt * block
  | Switch of expr * (int * block) list * block
  | Return of expr option
  | Expr of expr
  | Scope of block
  | Spawn of string * string * expr list (* spawn Class.m(args); *)

and block = stmt list

type meth_decl = {
  m_static : bool;
  m_name : string;
  m_params : (string * ty) list;
  m_ret : ty option;
  m_body : block;
  m_pos : Loc.pos;
}

type field_decl = {
  f_static : bool;
  f_name : string;
  f_ty : ty;
  f_pos : Loc.pos;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : field_decl list;
  c_meths : meth_decl list;
  c_pos : Loc.pos;
}

type program = class_decl list
