type st = {
  lx : Lexer.t;
  mutable tok : Token.t;
  mutable pos : Loc.pos;
}

let make src =
  let lx = Lexer.create src in
  let tok, pos = Lexer.next lx in
  { lx; tok; pos }

let advance st =
  let tok, pos = Lexer.next st.lx in
  st.tok <- tok;
  st.pos <- pos

let expect st tok =
  if st.tok = tok then advance st
  else
    Loc.error st.pos "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string st.tok)

let expect_ident st =
  match st.tok with
  | Token.IDENT s ->
      advance st;
      s
  | t -> Loc.error st.pos "expected identifier but found '%s'" (Token.to_string t)

let expect_int st =
  match st.tok with
  | Token.INT n ->
      advance st;
      n
  | Token.MINUS ->
      advance st;
      (match st.tok with
      | Token.INT n ->
          advance st;
          -n
      | t ->
          Loc.error st.pos "expected integer but found '%s'" (Token.to_string t))
  | t -> Loc.error st.pos "expected integer but found '%s'" (Token.to_string t)

(* type := ("int" | "bool" | IDENT) ("[" "]")* *)
let parse_ty st =
  let base =
    match st.tok with
    | Token.KW_int ->
        advance st;
        Ast.Tint
    | Token.KW_bool ->
        advance st;
        Ast.Tbool
    | Token.IDENT c ->
        advance st;
        Ast.Tname c
    | t -> Loc.error st.pos "expected a type but found '%s'" (Token.to_string t)
  in
  let rec arrays t =
    if st.tok = Token.LBRACKET then begin
      advance st;
      expect st Token.RBRACKET;
      arrays (Ast.Tarr t)
    end
    else t
  in
  arrays base

let mk pos e = { Ast.e; pos }

let rec parse_expr_prec st = parse_lor st

and parse_lor st =
  let rec go lhs =
    if st.tok = Token.BARBAR then begin
      let pos = st.pos in
      advance st;
      let rhs = parse_land st in
      go (mk pos (Ast.Bin (Ast.Blor, lhs, rhs)))
    end
    else lhs
  in
  go (parse_land st)

and parse_land st =
  let rec go lhs =
    if st.tok = Token.AMPAMP then begin
      let pos = st.pos in
      advance st;
      let rhs = parse_bitop st in
      go (mk pos (Ast.Bin (Ast.Bland, lhs, rhs)))
    end
    else lhs
  in
  go (parse_bitop st)

and parse_bitop st =
  let op_of = function
    | Token.AMP -> Some Ast.Band
    | Token.BAR -> Some Ast.Bor
    | Token.CARET -> Some Ast.Bxor
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_equality st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_equality st)

and parse_equality st =
  let op_of = function
    | Token.EQEQ -> Some Ast.Beq
    | Token.BANGEQ -> Some Ast.Bne
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_relational st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_relational st)

and parse_relational st =
  let op_of = function
    | Token.LT -> Some Ast.Blt
    | Token.LE -> Some Ast.Ble
    | Token.GT -> Some Ast.Bgt
    | Token.GE -> Some Ast.Bge
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_shift st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_shift st)

and parse_shift st =
  let op_of = function
    | Token.SHL -> Some Ast.Bshl
    | Token.SHR -> Some Ast.Bshr
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_additive st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_additive st)

and parse_additive st =
  let op_of = function
    | Token.PLUS -> Some Ast.Badd
    | Token.MINUS -> Some Ast.Bsub
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_multiplicative st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let op_of = function
    | Token.STAR -> Some Ast.Bmul
    | Token.SLASH -> Some Ast.Bdiv
    | Token.PERCENT -> Some Ast.Brem
    | _ -> None
  in
  let rec go lhs =
    match op_of st.tok with
    | Some op ->
        let pos = st.pos in
        advance st;
        let rhs = parse_unary st in
        go (mk pos (Ast.Bin (op, lhs, rhs)))
    | None -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match st.tok with
  | Token.MINUS ->
      let pos = st.pos in
      advance st;
      mk pos (Ast.Un (Ast.Uneg, parse_unary st))
  | Token.BANG ->
      let pos = st.pos in
      advance st;
      mk pos (Ast.Un (Ast.Unot, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match st.tok with
    | Token.DOT ->
        advance st;
        let name = expect_ident st in
        if st.tok = Token.LPAREN then begin
          let args = parse_args st in
          go (mk e.Ast.pos (Ast.Call (Some e, name, args)))
        end
        else go (mk e.Ast.pos (Ast.Dot (e, name)))
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr_prec st in
        expect st Token.RBRACKET;
        go (mk e.Ast.pos (Ast.Index (e, idx)))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  expect st Token.LPAREN;
  if st.tok = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr_prec st in
      if st.tok = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let pos = st.pos in
  match st.tok with
  | Token.INT n ->
      advance st;
      mk pos (Ast.Int n)
  | Token.KW_true ->
      advance st;
      mk pos (Ast.Bool true)
  | Token.KW_false ->
      advance st;
      mk pos (Ast.Bool false)
  | Token.KW_null ->
      advance st;
      mk pos Ast.Null
  | Token.KW_this ->
      advance st;
      mk pos Ast.This
  | Token.KW_new -> begin
      advance st;
      let t = parse_new_ty st in
      match t with
      | `Obj c -> mk pos (Ast.New_obj c)
      | `Arr (elt, len) -> mk pos (Ast.New_arr (elt, len))
    end
  | Token.IDENT name ->
      advance st;
      if st.tok = Token.LPAREN then
        let args = parse_args st in
        mk pos (Ast.Call (None, name, args))
      else mk pos (Ast.Ident name)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Token.RPAREN;
      e
  | t -> Loc.error pos "expected an expression but found '%s'" (Token.to_string t)

(* new C | new int[len] | new C[len] | new int[][]? (only 1-D allocation) *)
and parse_new_ty st =
  let base =
    match st.tok with
    | Token.KW_int ->
        advance st;
        Ast.Tint
    | Token.KW_bool ->
        advance st;
        Ast.Tbool
    | Token.IDENT c ->
        advance st;
        Ast.Tname c
    | t -> Loc.error st.pos "expected a type after 'new' but found '%s'" (Token.to_string t)
  in
  if st.tok = Token.LBRACKET then begin
    advance st;
    let len = parse_expr_prec st in
    expect st Token.RBRACKET;
    (* further "[]" make it an array-of-arrays allocation of empty rows *)
    let rec extra elt =
      if st.tok = Token.LBRACKET then begin
        advance st;
        expect st Token.RBRACKET;
        extra (Ast.Tarr elt)
      end
      else elt
    in
    `Arr (extra base, len)
  end
  else
    match base with
    | Ast.Tname c -> `Obj c
    | t -> Loc.error st.pos "cannot 'new' a %s without a length" (Ast.ty_to_string t)

let mk_s pos s = { Ast.s; spos = pos }

let rec parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if st.tok = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  let pos = st.pos in
  match st.tok with
  | Token.LBRACE -> mk_s pos (Ast.Scope (parse_block st))
  | Token.KW_var ->
      advance st;
      let name = expect_ident st in
      expect st Token.COLON;
      let ty = parse_ty st in
      let init =
        if st.tok = Token.ASSIGN then begin
          advance st;
          Some (parse_expr_prec st)
        end
        else None
      in
      expect st Token.SEMI;
      mk_s pos (Ast.Decl (name, ty, init))
  | Token.KW_if ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr_prec st in
      expect st Token.RPAREN;
      let then_ = parse_block st in
      let else_ =
        if st.tok = Token.KW_else then begin
          advance st;
          if st.tok = Token.KW_if then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      mk_s pos (Ast.If (cond, then_, else_))
  | Token.KW_while ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr_prec st in
      expect st Token.RPAREN;
      let body = parse_block st in
      mk_s pos (Ast.While (cond, body))
  | Token.KW_for ->
      advance st;
      expect st Token.LPAREN;
      let init = parse_simple_stmt st in
      expect st Token.SEMI;
      let cond = parse_expr_prec st in
      expect st Token.SEMI;
      let step = parse_simple_stmt st in
      expect st Token.RPAREN;
      let body = parse_block st in
      mk_s pos (Ast.For (init, cond, step, body))
  | Token.KW_switch ->
      advance st;
      expect st Token.LPAREN;
      let scrut = parse_expr_prec st in
      expect st Token.RPAREN;
      expect st Token.LBRACE;
      let cases = ref [] in
      let default = ref [] in
      while st.tok <> Token.RBRACE do
        match st.tok with
        | Token.KW_case ->
            advance st;
            let n = expect_int st in
            expect st Token.COLON;
            cases := (n, parse_block st) :: !cases
        | Token.KW_default ->
            advance st;
            expect st Token.COLON;
            default := parse_block st
        | t ->
            Loc.error st.pos "expected 'case' or 'default' but found '%s'"
              (Token.to_string t)
      done;
      advance st;
      mk_s pos (Ast.Switch (scrut, List.rev !cases, !default))
  | Token.KW_return ->
      advance st;
      if st.tok = Token.SEMI then begin
        advance st;
        mk_s pos (Ast.Return None)
      end
      else begin
        let e = parse_expr_prec st in
        expect st Token.SEMI;
        mk_s pos (Ast.Return (Some e))
      end
  | Token.KW_spawn ->
      advance st;
      let cls = expect_ident st in
      expect st Token.DOT;
      let m = expect_ident st in
      let args = parse_args st in
      expect st Token.SEMI;
      mk_s pos (Ast.Spawn (cls, m, args))
  | _ ->
      let stmt = parse_simple_stmt st in
      expect st Token.SEMI;
      stmt

(* assignment or expression statement, with no trailing ';' (for headers) *)
and parse_simple_stmt st =
  let pos = st.pos in
  if st.tok = Token.KW_var then begin
    advance st;
    let name = expect_ident st in
    expect st Token.COLON;
    let ty = parse_ty st in
    let init =
      if st.tok = Token.ASSIGN then begin
        advance st;
        Some (parse_expr_prec st)
      end
      else None
    in
    mk_s pos (Ast.Decl (name, ty, init))
  end
  else begin
    let e = parse_expr_prec st in
    if st.tok = Token.ASSIGN then begin
      advance st;
      let rhs = parse_expr_prec st in
      mk_s pos (Ast.Assign (e, rhs))
    end
    else mk_s pos (Ast.Expr e)
  end

let parse_params st =
  expect st Token.LPAREN;
  if st.tok = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let name = expect_ident st in
      expect st Token.COLON;
      let ty = parse_ty st in
      if st.tok = Token.COMMA then begin
        advance st;
        go ((name, ty) :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev ((name, ty) :: acc)
      end
    in
    go []
  end

let parse_member st =
  let pos = st.pos in
  let static =
    if st.tok = Token.KW_static then begin
      advance st;
      true
    end
    else false
  in
  match st.tok with
  | Token.KW_var ->
      advance st;
      let name = expect_ident st in
      expect st Token.COLON;
      let ty = parse_ty st in
      expect st Token.SEMI;
      `Field { Ast.f_static = static; f_name = name; f_ty = ty; f_pos = pos }
  | Token.KW_fun ->
      advance st;
      let name = expect_ident st in
      let params = parse_params st in
      let ret =
        if st.tok = Token.COLON then begin
          advance st;
          Some (parse_ty st)
        end
        else None
      in
      let body = parse_block st in
      `Meth
        {
          Ast.m_static = static;
          m_name = name;
          m_params = params;
          m_ret = ret;
          m_body = body;
          m_pos = pos;
        }
  | t ->
      Loc.error pos "expected 'var' or 'fun' in class body but found '%s'"
        (Token.to_string t)

let parse_class st =
  let pos = st.pos in
  expect st Token.KW_class;
  let name = expect_ident st in
  let super =
    if st.tok = Token.KW_extends then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  expect st Token.LBRACE;
  let fields = ref [] in
  let meths = ref [] in
  while st.tok <> Token.RBRACE do
    match parse_member st with
    | `Field f -> fields := f :: !fields
    | `Meth m -> meths := m :: !meths
  done;
  advance st;
  {
    Ast.c_name = name;
    c_super = super;
    c_fields = List.rev !fields;
    c_meths = List.rev !meths;
    c_pos = pos;
  }

let parse_program src =
  let st = make src in
  let rec go acc =
    if st.tok = Token.EOF then List.rev acc else go (parse_class st :: acc)
  in
  go []

let parse_expr src =
  let st = make src in
  let e = parse_expr_prec st in
  expect st Token.EOF;
  e
