(** The paper's accuracy metric (section 4.4): the overlap percentage of
    two profiles is the sum over all profiled items of the minimum of the
    two sample-percentages — 100% iff the normalized profiles coincide. *)

val percent : (string * int) list -> (string * int) list -> float
(** [percent perfect sampled] in [0, 100].  Either profile being empty
    yields 0 (100 when both are empty). *)

val sample_percentages : (string * int) list -> (string * float) list
(** Each item's share of the profile's total, in percent, descending. *)
