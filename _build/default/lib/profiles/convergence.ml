type t = {
  window : int;
  threshold : float;
  patience : int;
  snapshot : unit -> (string * int) list;
  sampler : Core.Sampler.t;
  mutable last : (string * int) list option;
  mutable stable_windows : int;
  mutable windows : int;
  mutable next_at : int;
  mutable done_ : bool;
}

let create ?(window = 500) ?(threshold = 98.0) ?(patience = 2) ~snapshot
    sampler =
  {
    window;
    threshold;
    patience;
    snapshot;
    sampler;
    last = None;
    stable_windows = 0;
    windows = 0;
    next_at = window;
    done_ = false;
  }

let consider t =
  if (not t.done_) && Core.Sampler.samples_fired t.sampler >= t.next_at then begin
    t.next_at <- t.next_at + t.window;
    t.windows <- t.windows + 1;
    let now = t.snapshot () in
    (match t.last with
    | Some prev when Overlap.percent prev now >= t.threshold ->
        t.stable_windows <- t.stable_windows + 1
    | _ -> t.stable_windows <- 0);
    t.last <- Some now;
    if t.stable_windows >= t.patience then begin
      t.done_ <- true;
      Core.Sampler.disable t.sampler
    end
  end

let wrap t (hooks : Vm.Interp.hooks) =
  {
    hooks with
    Vm.Interp.fire =
      (fun tid ->
        let fired = hooks.Vm.Interp.fire tid in
        if fired then consider t;
        fired);
  }

let converged t = t.done_
let windows_seen t = t.windows
