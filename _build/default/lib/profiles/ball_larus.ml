module Lir = Ir.Lir

type node_info = {
  (* DAG successors in branch order, each with its increment *)
  edges : (Lir.label * int) array;
  finishes : int; (* returns + outgoing retreating edges end a path here *)
  num_paths : int;
}

type t = {
  nodes : node_info option array; (* indexed by label; None = unreachable *)
  starts : Lir.label list;
  incr_tbl : (Lir.label * Lir.label, int) Hashtbl.t;
}

let number (f : Lir.func) =
  let n = Lir.num_blocks f in
  let retreating = Ir.Loops.retreating_edges f in
  let is_retreating u v = List.mem (u, v) retreating in
  let reach = Ir.Cfg.reachable f in
  let nodes = Array.make n None in
  let incr_tbl = Hashtbl.create 32 in
  (* memoized recursion over the DAG: successors are processed before the
     increments of a node's out-edges are assigned *)
  let rec process u =
    match nodes.(u) with
    | Some info -> info
    | None ->
        let b = Lir.block f u in
        let finishes =
          (match b.Lir.term with Lir.Return _ -> 1 | _ -> 0)
          + List.length
              (List.filter
                 (fun v -> is_retreating u v)
                 (Ir.Cfg.succs f u))
        in
        let acc = ref finishes in
        let edges =
          List.filter_map
            (fun v ->
              if is_retreating u v then None
              else begin
                let child = process v in
                let inc = !acc in
                acc := !acc + child.num_paths;
                Hashtbl.replace incr_tbl (u, v) inc;
                Some (v, inc)
              end)
            (Ir.Cfg.succs f u)
        in
        let info =
          {
            edges = Array.of_list edges;
            finishes;
            num_paths = max !acc 1 (* dead-end non-return nodes: degenerate *);
          }
        in
        nodes.(u) <- Some info;
        info
  in
  for u = 0 to n - 1 do
    if reach.(u) then ignore (process u)
  done;
  let headers = Ir.Loops.loop_headers f in
  let starts =
    f.Lir.entry :: List.filter (fun h -> h <> f.Lir.entry) headers
  in
  { nodes; starts; incr_tbl }

let increment t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.incr_tbl (src, dst))

let nonzero_increments t =
  Hashtbl.fold
    (fun e inc acc -> if inc > 0 then (e, inc) :: acc else acc)
    t.incr_tbl []
  |> List.sort compare

let num_paths_from t l =
  match t.nodes.(l) with Some i -> i.num_paths | None -> 0

let start_points t = t.starts

let decode t ~start sum =
  let rec go u remaining acc =
    match t.nodes.(u) with
    | None -> invalid_arg "Ball_larus.decode: unreachable start"
    | Some info ->
        if remaining < info.finishes then List.rev (u :: acc)
        else begin
          (* choose the successor whose increment window contains the
             remaining sum: the edge with the largest increment <= sum *)
          let best = ref None in
          Array.iter
            (fun (v, inc) ->
              if inc <= remaining then
                match !best with
                | Some (_, bi) when bi >= inc -> ()
                | _ -> best := Some (v, inc))
            info.edges;
          match !best with
          | Some (v, inc) -> go v (remaining - inc) (u :: acc)
          | None ->
              if remaining = 0 then List.rev (u :: acc)
              else invalid_arg "Ball_larus.decode: sum out of range"
        end
  in
  (match t.nodes.(start) with
  | Some info when sum >= info.num_paths ->
      invalid_arg "Ball_larus.decode: sum out of range"
  | None -> invalid_arg "Ball_larus.decode: unreachable start"
  | Some _ -> ());
  go start sum []
