module Lir = Ir.Lir

type t = {
  call_edges : Call_edge.t;
  fields : Field_access.t;
  edges : Edge_profile.t;
  values : Value_profile.t;
  paths : Path_profile.t;
  receivers : Receiver_profile.t;
  cct : Cct.t;
}

let create () =
  {
    call_edges = Call_edge.create ();
    fields = Field_access.create ();
    edges = Edge_profile.create ();
    values = Value_profile.create ();
    paths = Path_profile.create ();
    receivers = Receiver_profile.create ();
    cct = Cct.create ();
  }

let op_cost (op : Lir.instrument_op) =
  match op.Lir.hook with
  | "call_edge" -> 55 (* stack walk + hash-table update *)
  | "field_access" -> 6 (* two loads, increment, store: about one check *)
  | "edge" -> 7
  | "value" -> 25 (* TNV table probe *)
  | "path_reset" -> 2 (* zero a register *)
  | "path_add" -> 1 (* add-immediate *)
  | "path_flush" -> 12 (* hash-table bump *)
  | "receiver" -> 15 (* class load + histogram bump *)
  | "cct" -> 80 (* full stack walk + tree splice: the expensive one *)
  | _ -> 10

let on_instrument t (ctx : Vm.Interp.ctx) (op : Lir.instrument_op) =
  match (op.Lir.hook, op.Lir.payload) with
  | "call_edge", Lir.P_unit ->
      let caller, site =
        match ctx.Vm.Interp.caller with
        | Some (m, s) -> (Lir.string_of_method_ref m, s)
        | None -> ("<thread-start>", -1)
      in
      Call_edge.record t.call_edges ~caller ~site
        ~callee:(Lir.string_of_method_ref ctx.Vm.Interp.cur)
  | "field_access", Lir.P_field (fld, is_write) ->
      Field_access.record t.fields ~field:(Lir.string_of_field_ref fld) ~is_write
  | "edge", Lir.P_edge (u, v) ->
      Edge_profile.record t.edges
        ~meth:(Lir.string_of_method_ref ctx.Vm.Interp.cur)
        ~src:u ~dst:v
  | "value", Lir.P_value (operand, site) ->
      Value_profile.record t.values
        ~meth:(Lir.string_of_method_ref ctx.Vm.Interp.cur)
        ~site
        ~value:(ctx.Vm.Interp.eval operand)
  | "path_reset", Lir.P_site start ->
      Path_profile.reset t.paths ~frame:ctx.Vm.Interp.frame_id
        ~meth:(Lir.string_of_method_ref ctx.Vm.Interp.cur)
        ~start
  | "path_add", Lir.P_site inc ->
      Path_profile.add t.paths ~frame:ctx.Vm.Interp.frame_id ~inc
  | "path_flush", Lir.P_unit ->
      Path_profile.flush t.paths ~frame:ctx.Vm.Interp.frame_id
  | "cct", Lir.P_unit ->
      (* the walk arrives innermost first; the tree wants outermost first *)
      Cct.record t.cct
        (List.rev_map
           (fun (m, site) -> (Lir.string_of_method_ref m, site))
           (ctx.Vm.Interp.stack ()))
  | "receiver", Lir.P_value (operand, site) -> (
      match ctx.Vm.Interp.class_of (ctx.Vm.Interp.eval operand) with
      | Some cls ->
          Receiver_profile.record t.receivers
            ~meth:(Lir.string_of_method_ref ctx.Vm.Interp.cur)
            ~site ~cls
      | None -> ())
  | hook, _ ->
      raise
        (Vm.Interp.Runtime_error
           (Printf.sprintf "unknown instrumentation hook %s (or bad payload)" hook))

let hooks t sampler =
  {
    Vm.Interp.fire = (fun tid -> Core.Sampler.fire sampler tid);
    on_timer_tick = (fun () -> Core.Sampler.on_timer_tick sampler);
    on_instrument = on_instrument t;
    instr_cost = op_cost;
  }

let null_sampler_hooks t =
  {
    Vm.Interp.fire = (fun _ -> false);
    on_timer_tick = ignore;
    on_instrument = on_instrument t;
    instr_cost = op_cost;
  }
