let totals l = List.fold_left (fun acc (_, c) -> acc + c) 0 l

let sample_percentages l =
  let t = totals l in
  if t = 0 then []
  else
    List.map (fun (k, c) -> (k, 100.0 *. float_of_int c /. float_of_int t)) l
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let percent p1 p2 =
  let t1 = totals p1 and t2 = totals p2 in
  if t1 = 0 && t2 = 0 then 100.0
  else if t1 = 0 || t2 = 0 then 0.0
  else begin
    let m1 = Hashtbl.create (List.length p1) in
    List.iter
      (fun (k, c) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt m1 k) in
        Hashtbl.replace m1 k (prev + c))
      p1;
    let seen = Hashtbl.create (List.length p2) in
    List.iter
      (fun (k, c) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt seen k) in
        Hashtbl.replace seen k (prev + c))
      p2;
    let acc = ref 0.0 in
    Hashtbl.iter
      (fun k c2 ->
        match Hashtbl.find_opt m1 k with
        | Some c1 ->
            let pct1 = 100.0 *. float_of_int c1 /. float_of_int t1 in
            let pct2 = 100.0 *. float_of_int c2 /. float_of_int t2 in
            acc := !acc +. Float.min pct1 pct2
        | None -> ())
      seen;
    !acc
  end
