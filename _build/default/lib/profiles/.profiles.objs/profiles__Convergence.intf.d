lib/profiles/convergence.mli: Core Vm
