lib/profiles/overlap.mli:
