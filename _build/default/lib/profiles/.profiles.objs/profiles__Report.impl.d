lib/profiles/report.ml: Buffer Call_edge Cct Collector Edge_profile Field_access List Path_profile Printf Receiver_profile String Value_profile
