lib/profiles/call_edge.ml: Hashtbl List Printf
