lib/profiles/collector.ml: Call_edge Cct Core Edge_profile Field_access Ir List Path_profile Printf Receiver_profile Value_profile Vm
