lib/profiles/call_edge.mli:
