lib/profiles/collector.mli: Call_edge Cct Core Edge_profile Field_access Ir Path_profile Receiver_profile Value_profile Vm
