lib/profiles/specs.mli: Core
