lib/profiles/cct.ml: Hashtbl List String
