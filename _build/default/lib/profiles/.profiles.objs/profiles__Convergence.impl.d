lib/profiles/convergence.ml: Core Overlap Vm
