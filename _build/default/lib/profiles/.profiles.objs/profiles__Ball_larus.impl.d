lib/profiles/ball_larus.ml: Array Hashtbl Ir List Option
