lib/profiles/edge_profile.ml: Hashtbl List Printf
