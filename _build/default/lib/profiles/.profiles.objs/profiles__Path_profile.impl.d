lib/profiles/path_profile.ml: Hashtbl List Printf
