lib/profiles/cct.mli:
