lib/profiles/path_profile.mli:
