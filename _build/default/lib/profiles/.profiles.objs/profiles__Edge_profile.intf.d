lib/profiles/edge_profile.mli:
