lib/profiles/specs.ml: Array Ball_larus Core Ir List
