lib/profiles/overlap.ml: Float Hashtbl List Option
