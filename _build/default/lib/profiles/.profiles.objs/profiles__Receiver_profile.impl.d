lib/profiles/receiver_profile.ml: Hashtbl List Option Printf
