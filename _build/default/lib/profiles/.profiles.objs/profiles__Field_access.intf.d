lib/profiles/field_access.mli:
