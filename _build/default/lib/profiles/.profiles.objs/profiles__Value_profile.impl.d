lib/profiles/value_profile.ml: Hashtbl List Printf
