lib/profiles/report.mli: Collector
