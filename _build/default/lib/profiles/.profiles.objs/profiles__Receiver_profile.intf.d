lib/profiles/receiver_profile.mli:
