lib/profiles/field_access.ml: Hashtbl List
