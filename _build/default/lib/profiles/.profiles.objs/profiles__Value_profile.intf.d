lib/profiles/value_profile.mli:
