lib/profiles/ball_larus.mli: Ir
