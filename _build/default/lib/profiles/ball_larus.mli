(** Ball–Larus path numbering (Efficient Path Profiling, MICRO '96) on the
    acyclic skeleton of a method.

    The paper lists intraprocedural path profiling among the techniques
    that work unmodified inside the sampling framework; this module
    supplies the compile-time half (edge increments such that the running
    sum identifies the executed acyclic path uniquely), and
    {!Path_profile} the runtime half.

    Paths run from a {e start point} (the method entry or a loop header)
    to a {e finish point} (a return, or a backedge about to re-enter a
    header).  For every node the increments assign path sums so that
    paths from that node map bijectively onto [0, num_paths(node)). *)

type t

val number : Ir.Lir.func -> t
(** Numbering over the DAG of non-retreating edges of the (reachable part
    of the) function. *)

val increment : t -> src:Ir.Lir.label -> dst:Ir.Lir.label -> int
(** Increment for a DAG edge (0 when the edge carries none). *)

val nonzero_increments : t -> ((Ir.Lir.label * Ir.Lir.label) * int) list
(** Edges that need a [path_add] instrumentation op. *)

val num_paths_from : t -> Ir.Lir.label -> int
(** Number of distinct acyclic paths beginning at the node. *)

val start_points : t -> Ir.Lir.label list
(** Method entry plus all loop headers. *)

val decode : t -> start:Ir.Lir.label -> int -> Ir.Lir.label list
(** The block sequence of the path with the given sum, starting at
    [start].  Raises [Invalid_argument] if the sum is out of range. *)
