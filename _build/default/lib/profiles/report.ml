let kinds (c : Collector.t) =
  [
    ("call_edge", Call_edge.to_keyed c.Collector.call_edges);
    ("field_access", Field_access.to_keyed c.Collector.fields);
    ("cfg_edge", Edge_profile.to_keyed c.Collector.edges);
    ("value", Value_profile.to_keyed c.Collector.values);
    ("path", Path_profile.to_keyed c.Collector.paths);
    ("receiver", Receiver_profile.to_keyed c.Collector.receivers);
    ("cct", Cct.to_keyed c.Collector.cct);
  ]
  |> List.filter (fun (_, l) -> l <> [])

let summary c =
  let buf = Buffer.create 256 in
  List.iter
    (fun (kind, entries) ->
      let total = List.fold_left (fun a (_, n) -> a + n) 0 entries in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %6d distinct, %9d events\n" kind
           (List.length entries) total))
    (kinds c);
  if Buffer.length buf = 0 then "no profile data collected\n"
  else Buffer.contents buf

let top ?(n = 10) c =
  let buf = Buffer.create 256 in
  List.iter
    (fun (kind, entries) ->
      Buffer.add_string buf (kind ^ ":\n");
      let sorted = List.sort (fun (_, a) (_, b) -> compare b a) entries in
      List.iteri
        (fun i (k, count) ->
          if i < n then
            Buffer.add_string buf (Printf.sprintf "  %8d  %s\n" count k))
        sorted)
    (kinds c);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv c =
  List.map
    (fun (kind, entries) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "key,count\n";
      List.iter
        (fun (k, count) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d\n" (csv_escape k) count))
        (List.sort (fun (_, a) (_, b) -> compare b a) entries);
      (kind, Buffer.contents buf))
    (kinds c)
