(** Value profile: per-site top-value tables in the style of Calder,
    Feller and Eustace's TNV tables, maintained with the Misra–Gries
    heavy-hitters update so frequent values survive streams of cold
    ones. *)

type t

val create : unit -> t
val record : t -> meth:string -> site:int -> value:int -> unit

val top_value : t -> meth:string -> site:int -> (int * int) option
(** Most frequent value and its (approximate) count. *)

val invariance : t -> meth:string -> site:int -> float option
(** Fraction of the site's observations attributed to its top value —
    the "invariance" that value-specialization decisions key on. *)

val sites : t -> (string * int) list
val n_sites : t -> int
val to_keyed : t -> (string * int) list
