(** Additional instrumentation specs built on the profile machinery of
    this library (they cannot live in [core], which must not depend on
    the profile data structures). *)

val path_profile : Core.Spec.t
(** Ball–Larus path profiling: [path_reset] at the entry and at every
    loop header, [path_add] on DAG edges with non-zero increments,
    [path_flush] before returns and on backedges.  Meaningful under
    Full-Duplication (each sample records one acyclic path) and under
    exhaustive instrumentation (complete path histogram). *)

val cct_profile : Core.Spec.t
(** Calling-context-tree profiling via sampled stack walks
    (Arnold–Sweeney): one full stack walk per sampled method entry. *)

val receiver_profile : Core.Spec.t
(** Receiver-class profiling of virtual call sites (the input to
    receiver-class prediction). *)
