(** Rendering of collected profiles as text and CSV (for the CLI and for
    offline consumption of online profiles — the paper notes the
    technique "could be useful for collecting offline profiles as
    well"). *)

val summary : Collector.t -> string
(** One paragraph per non-empty profile kind. *)

val top : ?n:int -> Collector.t -> string
(** The [n] (default 10) hottest entries of each non-empty profile. *)

val to_csv : Collector.t -> (string * string) list
(** (profile kind, CSV text with a header row) for each non-empty
    profile. *)
