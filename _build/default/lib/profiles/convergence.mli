(** Convergence-driven sampling control.

    The paper retires instrumented code by "setting the sample condition
    permanently to false"; Calder et al.'s convergent profiling (cited in
    related work) decides *when* by watching the profile stabilize.  This
    controller snapshots a keyed profile every [window] samples and
    disables the sampler once the overlap between consecutive snapshots
    exceeds [threshold] percent for [patience] windows in a row. *)

type t

val create :
  ?window:int ->
  ?threshold:float ->
  ?patience:int ->
  snapshot:(unit -> (string * int) list) ->
  Core.Sampler.t ->
  t
(** Defaults: window 500 samples, threshold 98%, patience 2. *)

val wrap : t -> Vm.Interp.hooks -> Vm.Interp.hooks
(** Interpose on the sample condition; everything else passes through. *)

val converged : t -> bool
val windows_seen : t -> int
