(* VolanoMark analog: chat-room message passing between client threads
   and a server thread over bounded ring buffers.

   Character: thread switching, queue polling (spin + yield), modest call
   and field rates — the low-overhead threaded row of the paper's
   tables. *)

let name = "volano"

let source =
  {|
class Queue {
  var buf: int[];
  var head: int;
  var tail: int;
  var count: int;

  fun init(cap: int) { this.buf = new int[cap]; }

  fun full(): bool { return this.count >= this.buf.length; }
  fun empty(): bool { return this.count <= 0; }

  fun push(v: int) {
    this.buf[this.tail] = v;
    this.tail = this.tail + 1;
    if (this.tail >= this.buf.length) { this.tail = 0; }
    this.count = this.count + 1;
  }

  fun pop(): int {
    var v: int = this.buf[this.head];
    this.head = this.head + 1;
    if (this.head >= this.buf.length) { this.head = 0; }
    this.count = this.count - 1;
    return v;
  }
}

class Room {
  static var inbox: Queue;
  static var delivered: int;
  static var checksum: int;
  static var clients_done: int;
}

class Client {
  static fun run(id: int, messages: int) {
    var q: Queue = Room.inbox;
    var seed: int = 1000 + (id * 37);
    var m: int = 0;
    while (m < messages) {
      seed = ((seed * 69069) + 5) & 1073741823;
      var msg: int = ((id << 20) | (m & 1048575)) ^ (seed & 255);
      while (q.full()) { yield(); }
      q.push(msg);
      m = m + 1;
      if ((m & 7) == 0) { yield(); }
    }
    Room.clients_done = Room.clients_done + 1;
  }
}

class Server {
  static fun run(clients: int, messages: int) {
    var expected: int = clients * messages;
    var q: Queue = Room.inbox;
    var got: int = 0;
    while (got < expected) {
      while (q.empty()) { yield(); }
      var msg: int = q.pop();
      Room.checksum = (Room.checksum + (msg * 31)) & 16777215;
      Room.delivered = Room.delivered + 1;
      got = got + 1;
    }
  }
}

class Main {
  static fun main(scale: int): int {
    var clients: int = 4;
    var messages: int = 2500 * scale;
    Room.inbox = new Queue;
    Room.inbox.init(64);
    spawn Server.run(clients, messages);
    var i: int = 0;
    while (i < clients) {
      spawn Client.run(i, messages);
      i = i + 1;
    }
    while (Room.delivered < (clients * messages)) {
      yield();
    }
    print(Room.delivered);
    print(Room.checksum);
    return Room.checksum;
  }
}
|}
