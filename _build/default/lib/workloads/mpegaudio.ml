(* _222_mpegaudio analog: fixed-point subband-synthesis filter bank.

   Character: tight numeric inner loops over coefficient tables held in
   object fields (high field-access overhead), one filter-step call per
   sample (high call-edge overhead), loop-dominated (high backedge check
   cost in Table 2). *)

let name = "mpegaudio"

let source =
  {|
class Filter {
  var coeffs: int[];
  var state: int[];
  var taps: int;
  var pos: int;
  var vol: int;

  fun gain(v: int): int { return (v * this.vol) >> 8; }

  fun init(taps: int) {
    this.vol = 300;
    this.taps = taps;
    this.coeffs = new int[taps];
    this.state = new int[taps];
    var i: int = 0;
    while (i < taps) {
      this.coeffs[i] = ((i * 2896) % 4096) - 2048;
      i = i + 1;
    }
  }

  // one output sample: multiply-accumulate over the ring buffer, reading
  // the tables through 'this' each tap (as the real decoder's inner loop
  // reads its windowed coefficients)
  fun step(x: int): int {
    var p: int = this.pos;
    this.state[p] = x;
    var acc: int = 0;
    var t: int = 0;
    while (t < this.taps) {
      var idx: int = p - t;
      if (idx < 0) { idx = idx + this.taps; }
      acc = acc + ((this.coeffs[t] * this.state[idx]) >> 12);
      t = t + 1;
    }
    // data-dependent smoothing pass over a varying prefix of the state
    // (keeps the backedge pattern irregular, like the real decoder's
    // per-frame windowing)
    if ((x & 3) == 0) {
      var j: int = 0;
      var lim: int = (x >> 2) & 7;
      while (j < lim) {
        acc = acc + (this.state[j] >> 4);
        j = j + 1;
      }
    }
    this.pos = p + 1;
    if (this.pos >= this.taps) { this.pos = 0; }
    return this.gain(acc);
  }
}

class Decoder {
  var low: Filter;
  var high: Filter;
  var out: int;

  fun clip(v: int): int {
    if (v > 32767) { return 32767; }
    if (v < (0 - 32768)) { return 0 - 32768; }
    return v;
  }

  fun decodeFrame(samples: int[], from: int, len: int): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < len) {
      var x: int = samples[from + i];
      var l: int = this.low.step(x);
      var h: int = this.high.step(x - l);
      acc = (acc + this.clip(l + h)) & 16777215;
      i = i + 1;
    }
    this.out = acc;
    return acc;
  }
}

class Main {
  static fun main(scale: int): int {
    var n: int = 2688 * scale;
    var samples: int[] = new int[n];
    var seed: int = 424242;
    var i: int = 0;
    while (i < n) {
      seed = ((seed * 69069) + 1) & 1073741823;
      samples[i] = (seed >> 10) & 1023;
      i = i + 1;
    }
    var d: Decoder = new Decoder;
    d.low = new Filter;
    d.low.init(8);
    d.high = new Filter;
    d.high.init(8);
    var frames: int = n / 384;
    var acc: int = 0;
    var f: int = 0;
    while (f < frames) {
      acc = (acc + d.decodeFrame(samples, f * 384, 384)) & 16777215;
      f = f + 1;
    }
    print(acc);
    return acc;
  }
}
|}
