(* _227_mtrt analog: integer ray caster over a bounding-volume tree.

   Character: recursive traversal of an object tree with virtual dispatch
   (Inner vs Leaf nodes override [hit]), object-field reads throughout —
   call-heavy with moderate field access. *)

let name = "mtrt"

let source =
  {|
class Node {
  // bounding interval on the ray parameter axis
  var lo: int;
  var hi: int;
  fun hit(t0: int, t1: int, dir: int): int { return 0; }
}

class Inner extends Node {
  var left: Node;
  var right: Node;
  fun hit(t0: int, t1: int, dir: int): int {
    if (t1 < this.lo || this.hi < t0) { return 0; }
    var a: int = this.left.hit(t0, t1, dir);
    var b: int = this.right.hit(t0, t1, dir);
    return a + b;
  }
}

class Leaf extends Node {
  var material: int;
  fun hit(t0: int, t1: int, dir: int): int {
    if (t1 < this.lo || this.hi < t0) { return 0; }
    // shade: a little integer math per hit
    var d: int = dir ^ this.material;
    var s: int = (d * 73) + ((this.lo + this.hi) >> 1);
    return (s & 255) + 1;
  }
}

class Scene {
  var root: Node;
  var count: int;

  fun build(lo: int, hi: int, depth: int): Node {
    this.count = this.count + 1;
    if (depth == 0 || (hi - lo) < 4) {
      var leaf: Leaf = new Leaf;
      leaf.lo = lo;
      leaf.hi = hi;
      leaf.material = (lo * 31) ^ hi;
      return leaf;
    }
    var mid: int = (lo + hi) >> 1;
    var inner: Inner = new Inner;
    inner.lo = lo;
    inner.hi = hi;
    // overlapping children so rays visit both subtrees sometimes
    inner.left = this.build(lo, mid + 2, depth - 1);
    inner.right = this.build(mid - 2, hi, depth - 1);
    return inner;
  }
}

class Main {
  static fun main(scale: int): int {
    var scene: Scene = new Scene;
    scene.root = scene.build(0, 1024, 8);
    var rays: int = 2500 * scale;
    var acc: int = 0;
    var r: int = 0;
    while (r < rays) {
      var t0: int = (r * 37) % 900;
      var t1: int = t0 + 40 + (r % 60);
      acc = (acc + scene.root.hit(t0, t1, r)) & 1073741823;
      r = r + 1;
    }
    print(acc);
    print(scene.count);
    return acc;
  }
}
|}
