(* _228_jack analog: tokenizer + printer loop (parser-generator style).

   Character: switch-dominated scanning with frequent small writes to
   output-buffer object fields — the field-access-write-heavy row of
   Table 1 (writes dominate), with moderate call overhead. *)

let name = "jack"

let source =
  {|
class Out {
  var buf: int[];
  var pos: int;
  var col: int;
  var line: int;
  var checksum: int;

  fun put(c: int) {
    this.buf[this.pos] = c;
    this.pos = this.pos + 1;
    if (this.pos >= this.buf.length) { this.pos = 0; }
    this.col = this.col + 1;
    this.checksum = (this.checksum + (c * 131)) & 16777215;
    if (this.col > 72) {
      this.line = this.line + 1;
      this.col = 0;
    }
  }

  fun putWord(c: int, times: int) {
    var i: int = 0;
    while (i < times) {
      this.put(c + i);
      i = i + 1;
    }
  }
}

class Scanner {
  var input: int[];
  var pos: int;
  var idents: int;
  var numbers: int;
  var puncts: int;

  // character classes: 0 space, 1 letter, 2 digit, 3 punct
  fun classify(c: int): int {
    if (c < 10) { return 0; }
    if (c < 150) { return 1; }
    if (c < 200) { return 2; }
    return 3;
  }

  fun scan(out: Out): int {
    var toks: int = 0;
    var n: int = this.input.length;
    this.pos = 0;
    while (this.pos < n) {
      var c: int = this.input[this.pos];
      var k: int = this.classify(c);
      switch (k) {
        case 0: {
          this.pos = this.pos + 1;
        }
        case 1: {
          // identifier: consume the run of letters, echo it
          var start: int = this.pos;
          while (this.pos < n && this.classify(this.input[this.pos]) == 1) {
            out.put(this.input[this.pos]);
            this.pos = this.pos + 1;
          }
          out.put(32);
          this.idents = this.idents + 1;
          toks = toks + 1;
        }
        case 2: {
          var v: int = 0;
          while (this.pos < n && this.classify(this.input[this.pos]) == 2) {
            v = ((v * 10) + this.input[this.pos]) & 16777215;
            this.pos = this.pos + 1;
          }
          out.putWord(48, 3);
          this.numbers = this.numbers + 1;
          toks = toks + 1;
        }
        default: {
          out.put(c);
          out.put(10);
          this.puncts = this.puncts + 1;
          this.pos = this.pos + 1;
          toks = toks + 1;
        }
      }
    }
    return toks;
  }
}

class Main {
  static fun main(scale: int): int {
    var n: int = 9000 * scale;
    var input: int[] = new int[n];
    var seed: int = 31337;
    var i: int = 0;
    while (i < n) {
      seed = ((seed * 1103515245) + 12345) & 1073741823;
      input[i] = (seed >> 9) & 255;
      i = i + 1;
    }
    var sc: Scanner = new Scanner;
    sc.input = input;
    var out: Out = new Out;
    out.buf = new int[4096];
    var toks: int = 0;
    var round: int = 0;
    while (round < 2) {
      toks = toks + sc.scan(out);
      round = round + 1;
    }
    print(toks);
    print(out.checksum);
    return out.checksum + toks;
  }
}
|}
