(* pBOB analog (IBM's portable Business Object Benchmark): multithreaded
   warehouse transactions.

   Character: several worker threads executing order transactions against
   per-thread warehouses — mixed calls and field updates under thread
   scheduling (exercises yieldpoints and per-thread sampling). *)

let name = "pbob"

let source =
  {|
class Shared {
  static var done_count: int;
  static var total: int;
}

class Warehouse {
  var stock: int[];
  var orders: int;
  var revenue: int;

  fun init(items: int) {
    this.stock = new int[items];
    var i: int = 0;
    while (i < items) {
      this.stock[i] = 100;
      i = i + 1;
    }
  }

  fun newOrder(item: int, qty: int): int {
    var have: int = this.stock[item];
    if (have < qty) {
      this.restock(item);
      have = this.stock[item];
    }
    this.stock[item] = have - qty;
    this.orders = this.orders + 1;
    var price: int = 10 + (item % 17);
    var amount: int = price * qty;
    this.revenue = (this.revenue + amount) & 1073741823;
    return amount;
  }

  fun restock(item: int) {
    this.stock[item] = this.stock[item] + 200;
  }

  fun payment(amount: int) {
    this.revenue = (this.revenue + amount) & 1073741823;
  }
}

class Worker {
  static fun run(id: int, txns: int) {
    var w: Warehouse = new Warehouse;
    w.init(256);
    var seed: int = 7777 + (id * 131);
    var t: int = 0;
    while (t < txns) {
      seed = ((seed * 1103515245) + 12345) & 1073741823;
      var item: int = (seed >> 6) % 256;
      var qty: int = 1 + ((seed >> 16) % 5);
      var kind: int = (seed >> 3) % 10;
      if (kind < 7) {
        var amount: int = w.newOrder(item, qty);
        w.payment(amount & 255);
      } else {
        w.payment(item + qty);
      }
      t = t + 1;
    }
    Shared.total = (Shared.total + w.revenue) & 1073741823;
    Shared.done_count = Shared.done_count + 1;
  }
}

class Main {
  static fun main(scale: int): int {
    var workers: int = 3;
    var txns: int = 4000 * scale;
    var i: int = 0;
    while (i < workers) {
      spawn Worker.run(i, txns);
      i = i + 1;
    }
    while (Shared.done_count < workers) {
      yield();
    }
    print(Shared.total);
    return Shared.total;
  }
}
|}
