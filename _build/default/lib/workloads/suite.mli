(** The benchmark suite: ten jasm programs mirroring the character of the
    paper's SPECjvm98 + opt-compiler + pBOB + Volano suite (DESIGN.md
    explains each correspondence).

    Every program defines [Main.main(scale: int): int]; the returned int
    is a deterministic checksum used by semantic-preservation tests. *)

type benchmark = {
  bname : string;
  description : string;
  source : string;
  default_scale : int;
  threaded : bool;
}

val all : benchmark list
(** In the order of the paper's tables. *)

val find : string -> benchmark
(** Raises [Not_found]. *)

val names : string list

val compile : benchmark -> Bytecode.Classfile.program
(** Compile the benchmark's jasm source (memoized). *)

val entry : Ir.Lir.method_ref
(** [Main.main]. *)
