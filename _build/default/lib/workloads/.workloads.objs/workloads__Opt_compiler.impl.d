lib/workloads/opt_compiler.ml:
