lib/workloads/mpegaudio.ml:
