lib/workloads/pbob.ml:
