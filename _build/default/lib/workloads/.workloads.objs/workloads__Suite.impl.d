lib/workloads/suite.ml: Compress Db Hashtbl Ir Jack Jasm Javac Jess List Mpegaudio Mtrt Opt_compiler Pbob Volano
