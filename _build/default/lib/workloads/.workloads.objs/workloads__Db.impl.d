lib/workloads/db.ml:
