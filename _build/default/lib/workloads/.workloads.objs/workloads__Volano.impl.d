lib/workloads/volano.ml:
