lib/workloads/jess.ml:
