lib/workloads/suite.mli: Bytecode Ir
