lib/workloads/jack.ml:
