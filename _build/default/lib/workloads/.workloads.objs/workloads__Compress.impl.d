lib/workloads/compress.ml:
