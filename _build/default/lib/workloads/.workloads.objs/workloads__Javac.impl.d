lib/workloads/javac.ml:
