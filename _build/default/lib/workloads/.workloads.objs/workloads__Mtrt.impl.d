lib/workloads/mtrt.ml:
