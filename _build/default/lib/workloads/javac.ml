(* _213_javac analog: recursive-descent parser over a synthetic token
   stream.

   Character: many distinct call edges with a skewed frequency
   distribution (parseExpr/parseTerm/parseFactor call next/peek/expect
   from many distinct call sites) — this is the benchmark behind the
   paper's Figure 7 call-edge accuracy plot — plus switch-heavy dispatch.

   The token generator mirrors the grammar, so the parser always accepts;
   its choices come from a deterministic LCG. *)

let name = "javac"

let source =
  {|
// token kinds
//  0 EOF   1 CLASS 2 ID    3 LBRACE 4 RBRACE 5 VAR   6 SEMI
//  7 FUN   8 LPAREN 9 RPAREN 10 IF  11 WHILE 12 RETURN
// 13 ASSIGN 14 PLUS 15 MINUS 16 STAR 17 NUM

class Stream {
  var toks: int[];
  var n: int;
  fun put(t: int) {
    this.toks[this.n] = t;
    this.n = this.n + 1;
  }
}

class Gen {
  var s: Stream;
  var seed: int;
  var budget: int;

  fun roll(bound: int): int {
    this.seed = ((this.seed * 1103515245) + 12345) & 1073741823;
    return (this.seed >> 7) % bound;
  }

  fun unit(classes: int) {
    var i: int = 0;
    while (i < classes) {
      this.klass();
      i = i + 1;
    }
    this.s.put(0);
  }

  fun klass() {
    this.s.put(1);
    this.s.put(2);
    this.s.put(3);
    var members: int = 2 + this.roll(4);
    var i: int = 0;
    while (i < members) {
      this.member();
      i = i + 1;
    }
    this.s.put(4);
  }

  fun member() {
    if (this.roll(3) == 0) {
      this.s.put(5);
      this.s.put(2);
      this.s.put(6);
    } else {
      this.s.put(7);
      this.s.put(2);
      this.s.put(8);
      this.s.put(9);
      this.block(2);
    }
  }

  fun block(depth: int) {
    this.s.put(3);
    var stmts: int = 1 + this.roll(4);
    var i: int = 0;
    while (i < stmts) {
      this.stmt(depth);
      i = i + 1;
    }
    this.s.put(4);
  }

  fun stmt(depth: int) {
    var c: int = this.roll(8);
    if (c < 4 || depth <= 0) {
      this.s.put(2);
      this.s.put(13);
      this.expr(2);
      this.s.put(6);
    } else {
      if (c < 6) {
        this.s.put(10);
        this.s.put(8);
        this.expr(1);
        this.s.put(9);
        this.block(depth - 1);
      } else {
        if (c == 6) {
          this.s.put(11);
          this.s.put(8);
          this.expr(1);
          this.s.put(9);
          this.block(depth - 1);
        } else {
          this.s.put(12);
          this.expr(2);
          this.s.put(6);
        }
      }
    }
  }

  fun expr(depth: int) {
    this.term(depth);
    var ops: int = this.roll(3);
    var i: int = 0;
    while (i < ops) {
      if (this.roll(2) == 0) { this.s.put(14); } else { this.s.put(15); }
      this.term(depth);
      i = i + 1;
    }
  }

  fun term(depth: int) {
    this.factor(depth);
    if (this.roll(3) == 0) {
      this.s.put(16);
      this.factor(depth);
    }
  }

  fun factor(depth: int) {
    var c: int = this.roll(4);
    if (c == 0 && depth > 0) {
      this.s.put(8);
      this.expr(depth - 1);
      this.s.put(9);
    } else {
      if (c == 1) { this.s.put(2); } else { this.s.put(17); }
    }
  }
}

class Parser {
  var toks: int[];
  var pos: int;
  var nodes: int;
  var errors: int;

  fun peek(): int { return this.toks[this.pos]; }

  fun next(): int {
    var t: int = this.toks[this.pos];
    this.pos = this.pos + 1;
    return t;
  }

  fun expect(kind: int) {
    var t: int = this.next();
    if (t != kind) { this.errors = this.errors + 1; }
  }

  fun node(): int {
    this.nodes = this.nodes + 1;
    return this.nodes;
  }

  fun parseUnit(): int {
    var count: int = 0;
    while (this.peek() == 1) {
      count = count + this.parseClass();
    }
    this.expect(0);
    return count;
  }

  fun parseClass(): int {
    this.expect(1);
    this.expect(2);
    this.expect(3);
    var members: int = 0;
    while (this.peek() == 5 || this.peek() == 7) {
      members = members + this.parseMember();
    }
    this.expect(4);
    return this.node() + members;
  }

  fun parseMember(): int {
    if (this.peek() == 5) {
      this.expect(5);
      this.expect(2);
      this.expect(6);
      return this.node();
    }
    this.expect(7);
    this.expect(2);
    this.expect(8);
    this.expect(9);
    this.parseBlock();
    return this.node();
  }

  fun parseBlock() {
    this.expect(3);
    var go: bool = true;
    while (go) {
      var t: int = this.peek();
      switch (t) {
        case 2: { this.parseAssign(); }
        case 10: { this.parseIf(); }
        case 11: { this.parseWhile(); }
        case 12: { this.parseReturn(); }
        default: { go = false; }
      }
    }
    this.expect(4);
  }

  fun parseAssign() {
    this.expect(2);
    this.expect(13);
    this.parseExpr();
    this.expect(6);
    var unused: int = this.node();
  }

  fun parseIf() {
    this.expect(10);
    this.expect(8);
    this.parseExpr();
    this.expect(9);
    this.parseBlock();
    var unused: int = this.node();
  }

  fun parseWhile() {
    this.expect(11);
    this.expect(8);
    this.parseExpr();
    this.expect(9);
    this.parseBlock();
    var unused: int = this.node();
  }

  fun parseReturn() {
    this.expect(12);
    this.parseExpr();
    this.expect(6);
    var unused: int = this.node();
  }

  fun parseExpr() {
    this.parseTerm();
    var t: int = this.peek();
    while (t == 14 || t == 15) {
      var op: int = this.next();
      this.parseTerm();
      var unused: int = this.node();
      t = this.peek();
    }
  }

  fun parseTerm() {
    this.parseFactor();
    while (this.peek() == 16) {
      this.expect(16);
      this.parseFactor();
      var unused: int = this.node();
    }
  }

  fun parseFactor() {
    var t: int = this.peek();
    if (t == 8) {
      this.expect(8);
      this.parseExpr();
      this.expect(9);
    } else {
      if (t == 2) { this.expect(2); } else { this.expect(17); }
    }
    var unused: int = this.node();
  }
}

class Main {
  static fun main(scale: int): int {
    var s: Stream = new Stream;
    s.toks = new int[400000];
    var g: Gen = new Gen;
    g.s = s;
    g.seed = 987654321;
    g.unit(30 * scale);

    var p: Parser = new Parser;
    p.toks = s.toks;
    var total: int = 0;
    var round: int = 0;
    while (round < 3) {
      p.pos = 0;
      total = total + p.parseUnit();
      round = round + 1;
    }
    print(total);
    print(p.errors);
    return total + (p.errors * 1000000);
  }
}
|}
