(* _201_compress analog: LZW-style compression kernel.

   Character (per the paper's tables): execution dominated by a tight
   per-byte loop full of hash-table field/array accesses (highest
   field-access instrumentation overhead in Table 1, highest backedge
   check overhead in Table 2), with a small method call per byte. *)

let name = "compress"

let source =
  {|
class Input {
  var data: int[];
  var pos: int;
  var limit: int;
  fun reset(n: int) { this.pos = 0; this.limit = n; }
  fun more(): bool { return this.pos < this.limit; }
  fun next(): int {
    var b: int = this.data[this.pos];
    this.pos = this.pos + 1;
    return b;
  }
}

class Output {
  var written: int;
  var checksum: int;
  fun emit(code: int) {
    this.written = this.written + 1;
    this.checksum = ((this.checksum * 31) + code) & 16777215;
  }
}

class Compressor {
  var htab: int[];
  var codetab: int[];
  var freeEnt: int;
  var clears: int;
  var collisions: int;
  var lookups: int;

  fun init(size: int) {
    this.htab = new int[size];
    this.codetab = new int[size];
    var i: int = 0;
    while (i < size) { this.htab[i] = 0 - 1; i = i + 1; }
    this.freeEnt = 257;
  }

  fun enter(h: int, fcode: int, c: int) {
    if (this.freeEnt < 4096) {
      this.codetab[h] = this.freeEnt;
      this.htab[h] = fcode;
      this.freeEnt = this.freeEnt + 1;
    } else {
      this.clears = this.clears + 1;
      this.freeEnt = 257;
    }
  }

  fun compress(src: Input, out: Output) {
    var ent: int = src.next();
    while (src.more()) {
      var c: int = src.next();
      this.lookups = this.lookups + 1;
      var fcode: int = (c << 12) + ent;
      var h: int = ((c << 4) ^ ent) & (this.htab.length - 1);
      if (this.htab[h] == fcode) {
        ent = this.codetab[h];
      } else {
        if (this.htab[h] >= 0) {
          var found: bool = false;
          var probes: int = 0;
          while (!found && this.htab[h] >= 0 && probes < 8) {
            this.collisions = this.collisions + 1;
            h = h - 1;
            if (h < 0) { h = h + this.htab.length; }
            if (this.htab[h] == fcode) {
              ent = this.codetab[h];
              found = true;
            }
            probes = probes + 1;
          }
          if (!found) {
            out.emit(ent);
            if (this.htab[h] < 0) { this.enter(h, fcode, c); }
            ent = c;
          }
        } else {
          out.emit(ent);
          this.enter(h, fcode, c);
          ent = c;
        }
      }
    }
    out.emit(ent);
  }
}

class Main {
  static fun main(scale: int): int {
    var n: int = 3000 * scale;
    var src: Input = new Input;
    src.data = new int[n];
    var seed: int = 12345;
    var i: int = 0;
    while (i < n) {
      seed = ((seed * 1103515245) + 12345) & 1073741823;
      // skewed byte distribution so the dictionary actually hits
      src.data[i] = (seed >> 8) & 15;
      i = i + 1;
    }
    var comp: Compressor = new Compressor;
    comp.init(8192);
    var out: Output = new Output;
    var iter: int = 0;
    while (iter < 2) {
      src.reset(n);
      comp.compress(src, out);
      iter = iter + 1;
    }
    print(out.checksum);
    return out.checksum;
  }
}
|}
