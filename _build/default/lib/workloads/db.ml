(* _209_db analog: in-memory index operations.

   Character: the lowest overheads in the paper's tables across the board
   — large straight-line blocks of address arithmetic per loop iteration,
   few calls, few object-field accesses (data lives in local arrays), and
   few backedges per cycle (the probe sequence is unrolled). *)

let name = "db"

let source =
  {|
class Database {
  var keys: int[];
  var vals: int[];
  var mask: int;
  var hits: int;

  fun build(n: int) {
    // n must be a power of two
    this.keys = new int[n];
    this.vals = new int[n];
    this.mask = n - 1;
    var i: int = 0;
    while (i < n) {
      this.keys[i] = 0 - 1;
      i = i + 1;
    }
    var k: int = 0;
    while (k < (n >> 1)) {
      var key: int = k * 7;
      var h: int = (key * 2654435761) & this.mask;
      // unrolled linear probe, depth 3
      if (this.keys[h] < 0) {
        this.keys[h] = key;
        this.vals[h] = k * k;
      } else {
        var h1: int = (h + 1) & this.mask;
        if (this.keys[h1] < 0) {
          this.keys[h1] = key;
          this.vals[h1] = k * k;
        } else {
          var h2: int = (h + 2) & this.mask;
          if (this.keys[h2] < 0) {
            this.keys[h2] = key;
            this.vals[h2] = k * k;
          }
        }
      }
      k = k + 1;
    }
  }

  // hash lookup with an unrolled probe sequence: no inner loop
  fun lookup(key: int): int {
    var ks: int[] = this.keys;
    var m: int = this.mask;
    var h: int = (key * 2654435761) & m;
    if (ks[h] == key) { return this.vals[h]; }
    var h1: int = (h + 1) & m;
    if (ks[h1] == key) { return this.vals[h1]; }
    var h2: int = (h + 2) & m;
    if (ks[h2] == key) { return this.vals[h2]; }
    return 0 - 1;
  }
}

class Main {
  static fun main(scale: int): int {
    var db: Database = new Database;
    db.build(8192);
    var ops: int = 6000 * scale;
    var acc: int = 7;
    var q: int = 0;
    while (q < ops) {
      var key: int = (q * 31) % 28672;
      var v: int = db.lookup(key);
      if (v >= 0) { db.hits = db.hits + 1; } else { v = key; }
      // three rounds of inline record mixing (straight-line, no calls)
      var a: int = acc + v;
      var b: int = (a << 3) ^ (a >> 2);
      var c: int = (b * 37) + 11;
      var d: int = (c ^ (c >> 7)) + (b << 1);
      var e: int = (d * 13) ^ (d >> 3);
      var f: int = e + ((e << 5) ^ (d >> 1));
      var g: int = (f * 29) + (c ^ b);
      var h: int = g ^ ((g >> 11) + (f << 2));
      var i: int = (h * 17) + (g >> 5);
      var j: int = i ^ ((i << 7) + (h >> 2));
      var k: int = (j * 41) + (i ^ h);
      var l: int = k ^ ((k >> 9) + (j << 3));
      var m: int = (l * 23) + (k >> 1);
      var n: int = m ^ ((m << 2) + (l >> 6));
      var o: int = (n * 53) + (m ^ l);
      var p: int = o ^ ((o >> 4) + (n << 5));
      var a2: int = p + q;
      var b2: int = (a2 << 3) ^ (a2 >> 2);
      var c2: int = (b2 * 37) + 11;
      var d2: int = (c2 ^ (c2 >> 7)) + (b2 << 1);
      var e2: int = (d2 * 13) ^ (d2 >> 3);
      var f2: int = e2 + ((e2 << 5) ^ (d2 >> 1));
      var g2: int = (f2 * 29) + (c2 ^ b2);
      var h2: int = g2 ^ ((g2 >> 11) + (f2 << 2));
      var i2: int = (h2 * 17) + (g2 >> 5);
      var j2: int = i2 ^ ((i2 << 7) + (h2 >> 2));
      var k2: int = (j2 * 41) + (i2 ^ h2);
      var l2: int = k2 ^ ((k2 >> 9) + (j2 << 3));
      var m2: int = (l2 * 23) + (k2 >> 1);
      var n2: int = m2 ^ ((m2 << 2) + (l2 >> 6));
      var o2: int = (n2 * 53) + (m2 ^ l2);
      var p2: int = o2 ^ ((o2 >> 4) + (n2 << 5));
      acc = p2 & 1073741823;
      q = q + 1;
    }
    print(acc);
    return acc;
  }
}
|}
