(* opt-compiler analog (the paper runs Jalapeno's optimizing compiler on a
   subset of itself): expression-tree construction, constant folding,
   strength reduction and evaluation through many tiny mutually-calling
   methods.

   Character: the most call-dominated benchmark of the suite (the paper
   reports 189% exhaustive call-edge overhead, the suite's highest) with
   modest field access. *)

let name = "opt_compiler"

let source =
  {|
// op codes: 0 const, 1 add, 2 sub, 3 mul, 4 shl
class Node {
  var op: int;
  var value: int;
  var left: Node;
  var right: Node;
}

class Builder {
  var seed: int;
  var built: int;

  fun roll(bound: int): int {
    this.seed = ((this.seed * 1103515245) + 12345) & 1073741823;
    return (this.seed >> 11) % bound;
  }

  fun leaf(v: int): Node {
    var n: Node = new Node;
    n.op = 0;
    n.value = v;
    this.built = this.built + 1;
    return n;
  }

  fun mk(op: int, l: Node, r: Node): Node {
    var n: Node = new Node;
    n.op = op;
    n.left = l;
    n.right = r;
    this.built = this.built + 1;
    return n;
  }

  fun tree(depth: int): Node {
    if (depth == 0) {
      if (this.roll(3) == 0) { return this.leaf(this.roll(64)); }
      return this.leaf(0 - this.roll(16));
    }
    var op: int = 1 + this.roll(4);
    return this.mk(op, this.tree(depth - 1), this.tree(depth - 1));
  }
}

class Compiler {
  var folded: int;
  var reduced: int;

  fun isConst(n: Node): bool { return n.op == 0; }

  fun constValue(n: Node): int { return n.value; }

  fun evalOp(op: int, a: int, b: int): int {
    if (op == 1) { return a + b; }
    if (op == 2) { return a - b; }
    if (op == 3) { return a * b; }
    return a << (b & 15);
  }

  // constant folding: bottom-up, rebuilding via tiny helper calls
  fun fold(b: Builder, n: Node): Node {
    if (this.isConst(n)) { return n; }
    var l: Node = this.fold(b, n.left);
    var r: Node = this.fold(b, n.right);
    if (this.isConst(l) && this.isConst(r)) {
      this.folded = this.folded + 1;
      return b.leaf(this.evalOp(n.op, this.constValue(l), this.constValue(r)) & 16777215);
    }
    return this.strength(b, n.op, l, r);
  }

  // strength reduction: x * 2^k -> x << k
  fun strength(b: Builder, op: int, l: Node, r: Node): Node {
    if (op == 3 && this.isConst(r)) {
      var v: int = this.constValue(r);
      if (v == 2 || v == 4 || v == 8) {
        this.reduced = this.reduced + 1;
        var k: int = 1;
        if (v == 4) { k = 2; }
        if (v == 8) { k = 3; }
        return b.mk(4, l, b.leaf(k));
      }
    }
    return b.mk(op, l, r);
  }

  fun eval(n: Node): int {
    if (this.isConst(n)) { return this.constValue(n); }
    return this.evalOp(n.op, this.eval(n.left), this.eval(n.right)) & 16777215;
  }

  fun size(n: Node): int {
    if (this.isConst(n)) { return 1; }
    return 1 + this.size(n.left) + this.size(n.right);
  }
}

class Main {
  static fun main(scale: int): int {
    var b: Builder = new Builder;
    b.seed = 555555;
    var c: Compiler = new Compiler;
    var acc: int = 0;
    var units: int = 120 * scale;
    var u: int = 0;
    while (u < units) {
      var t: Node = b.tree(6);
      var opt: Node = c.fold(b, t);
      acc = (acc + c.eval(opt) + c.size(opt)) & 16777215;
      u = u + 1;
    }
    print(acc);
    print(c.folded);
    print(c.reduced);
    return acc;
  }
}
|}
