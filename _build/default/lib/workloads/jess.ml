(* _202_jess analog: forward-chaining rule engine kernel.

   Character: cascades of very small method calls per fact (rule
   evaluation), so call-edge instrumentation overhead is the table's
   highest class, while field access is moderate. *)

let name = "jess"

let source =
  {|
class Fact {
  var slot0: int;
  var slot1: int;
  var slot2: int;
  fun get(i: int): int {
    if (i == 0) { return this.slot0; }
    if (i == 1) { return this.slot1; }
    return this.slot2;
  }
}

class Test {
  var slot: int;
  var op: int;
  var value: int;
  fun matches(f: Fact): bool {
    var v: int = f.get(this.slot);
    if (this.op == 0) { return v == this.value; }
    if (this.op == 1) { return v < this.value; }
    if (this.op == 2) { return v > this.value; }
    return v != this.value;
  }
}

class Rule {
  var t0: Test;
  var t1: Test;
  var fired: int;
  fun evaluate(f: Fact): bool {
    if (this.t0.matches(f)) {
      if (this.t1.matches(f)) {
        this.fire();
        return true;
      }
    }
    return false;
  }
  fun fire() { this.fired = this.fired + 1; }
}

class Engine {
  var rules: Rule[];
  var nrules: int;
  var activations: int;
  fun run(f: Fact) {
    var i: int = 0;
    while (i < this.nrules) {
      if (this.rules[i].evaluate(f)) {
        this.activations = this.activations + 1;
      }
      i = i + 1;
    }
  }
}

class Main {
  static fun makeTest(slot: int, op: int, value: int): Test {
    var t: Test = new Test;
    t.slot = slot;
    t.op = op;
    t.value = value;
    return t;
  }

  static fun main(scale: int): int {
    var eng: Engine = new Engine;
    eng.nrules = 40;
    eng.rules = new Rule[40];
    var i: int = 0;
    while (i < 40) {
      var r: Rule = new Rule;
      r.t0 = Main.makeTest(i % 3, i % 4, (i * 7) % 50);
      r.t1 = Main.makeTest((i + 1) % 3, (i + 2) % 4, (i * 13) % 50);
      eng.rules[i] = r;
      i = i + 1;
    }
    var facts: int = 700 * scale;
    var f: Fact = new Fact;
    var k: int = 0;
    while (k < facts) {
      f.slot0 = k % 50;
      f.slot1 = (k * 3) % 50;
      f.slot2 = (k * 11) % 50;
      eng.run(f);
      k = k + 1;
    }
    print(eng.activations);
    return eng.activations;
  }
}
|}
