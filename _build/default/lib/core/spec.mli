(** Instrumentation specifications.

    A spec describes *where* instrumentation operations attach in a method
    and *what* operation runs there; it never concerns itself with
    overhead — that is the framework's job (the paper's stated goal:
    "implementors of instrumentation techniques ... can concentrate on
    developing new techniques quickly and correctly"). *)

type site =
  | At_entry  (** once on method entry *)
  | Before_instr of Ir.Lir.label * int
      (** immediately before instruction [idx] of block [label] *)
  | On_edge of Ir.Lir.label * Ir.Lir.label  (** on a CFG edge *)

type insertion = { site : site; op : Ir.Lir.instrument_op }

type t = {
  spec_name : string;
  plan : Ir.Lir.func -> insertion list;
      (** compute the insertions for a method (labels/indices refer to the
          un-duplicated code) *)
}

val call_edge : t
(** The paper's first example: every method entry records the
    (caller, call-site, callee) edge — payload [P_unit]; the runtime
    collector walks the stack. *)

val field_access : t
(** The paper's second example: every [Get_field]/[Put_field] bumps a
    per-field counter — payload [P_field]. *)

val edge_profile : t
(** Intraprocedural edge profiling (listed by the paper as working
    unmodified in the framework): one op per CFG edge, [P_edge]. *)

val value_profile : t
(** Value profiling of call arguments (Calder et al. style TNV tables):
    observes the first argument of each call — payload [P_value]. *)

val combine : t list -> t
(** Multiple instrumentations at once — the paper's "multiple types of
    instrumentation ... while recompiling the method only once". *)

val plan_for : t -> Ir.Lir.func -> insertion list
