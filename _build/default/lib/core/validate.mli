(** Static validation of transformed methods.

    [Verify] (in the ir library) checks generic well-formedness; this
    module checks the properties specific to the sampling transformation:

    - the checking code contains no unguarded instrumentation;
    - the duplicated subgraph is acyclic (bounded time per sample);
    - every check's sample target lies in the duplicated code and its
      fall-through in the checking code (or both coincide, for the
      checks-only configuration);
    - every duplicated block is a faithful copy of some checking-code
      block: same instructions after erasing instrumentation ops and
      same terminator shape (so running the duplicated code computes
      exactly what the checking code would).

    Running it after every transform in tests makes "the duplicated code
    is the same program" a checked invariant rather than a comment. *)

type error = { where : string; what : string }

val check : Ir.Lir.func -> error list
val check_exn : Ir.Lir.func -> unit
