lib/core/validate.ml: Array Ir List Printf String
