lib/core/spec.mli: Ir
