lib/core/transform.mli: Ir Spec
