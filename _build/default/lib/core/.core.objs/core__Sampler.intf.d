lib/core/sampler.mli:
