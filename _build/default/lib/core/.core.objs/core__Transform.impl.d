lib/core/transform.ml: Array Fun Hashtbl Ir List Option Spec
