lib/core/sampler.ml: Hashtbl
