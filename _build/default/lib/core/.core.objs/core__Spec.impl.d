lib/core/spec.ml: Array Ir List String
