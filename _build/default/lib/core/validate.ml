module Lir = Ir.Lir

type error = { where : string; what : string }

(* instrumentation ops and yieldpoints are erased before comparing code:
   they are the only legal differences between the two versions (the
   yieldpoint optimization strips yieldpoints from the checking code) *)
let erase instrs =
  Array.to_list instrs
  |> List.filter (function
       | Lir.Instrument _ | Lir.Guarded_instrument _ | Lir.Yieldpoint _ ->
           false
       | _ -> true)

(* terminator comparison that ignores target labels (they necessarily
   differ between the versions) but not computed operands *)
let term_shape = function
  | Lir.Goto _ -> `Goto
  | Lir.If { cond; _ } -> `If cond
  | Lir.Switch { scrut; cases; default = _ } ->
      `Switch (scrut, List.map fst cases)
  | Lir.Return v -> `Return v
  | Lir.Check _ -> `Check

let check (f : Lir.func) =
  let errs = ref [] in
  let err where fmt =
    Printf.ksprintf (fun what -> errs := { where; what } :: !errs) fmt
  in
  let n = Lir.num_blocks f in
  let fname = Lir.string_of_method_ref f.Lir.fname in
  (* collect the erased bodies of the checking code *)
  let checking_bodies = ref [] in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role = Lir.Orig then
      checking_bodies := (erase b.Lir.instrs, term_shape b.Lir.term) :: !checking_bodies
  done;
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    let where = Printf.sprintf "%s L%d" fname l in
    match b.Lir.role with
    | Lir.Dead -> ()
    | Lir.Orig | Lir.Check_block -> (
        (* no unguarded instrumentation outside the duplicated code *)
        Array.iter
          (function
            | Lir.Instrument _ ->
                err where "unguarded instrumentation in checking code"
            | _ -> ())
          b.Lir.instrs;
        match b.Lir.term with
        | Lir.Check { on_sample; fall } ->
            if on_sample <> fall then begin
              (match (Lir.block f on_sample).Lir.role with
              | Lir.Dup -> ()
              | _ -> err where "check sample target is not duplicated code");
              match (Lir.block f fall).Lir.role with
              | Lir.Orig | Lir.Check_block -> ()
              | _ -> err where "check fall-through leaves the checking code"
            end
        | _ -> ())
    | Lir.Dup -> (
        (* faithful-copy requirement, with synthetic transfer blocks
           (instrumentation + goto only) exempt *)
        let body = erase b.Lir.instrs in
        let shape = term_shape b.Lir.term in
        (match b.Lir.term with Lir.Check _ -> err where "check in duplicated code" | _ -> ());
        match (body, shape) with
        | [], `Goto -> ()
        | _ ->
            if
              not
                (List.exists
                   (fun (ob, os) -> ob = body && os = shape)
                   !checking_bodies)
            then
              err where
                "duplicated block is not a copy of any checking-code block")
  done;
  (* the duplicated subgraph must be acyclic *)
  let color = Array.make n 0 in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if (Lir.block f v).Lir.role = Lir.Dup then begin
          if color.(v) = 1 then
            err (Printf.sprintf "%s L%d" fname u) "cycle within duplicated code"
          else if color.(v) = 0 then dfs v
        end)
      (Ir.Cfg.succs f u);
    color.(u) <- 2
  in
  for l = 0 to n - 1 do
    if (Lir.block f l).Lir.role = Lir.Dup && color.(l) = 0 then dfs l
  done;
  List.rev !errs

let check_exn f =
  match check f with
  | [] -> ()
  | errs ->
      failwith
        ("Core.Validate: "
        ^ String.concat "; "
            (List.map (fun e -> e.where ^ ": " ^ e.what) errs))
