(** The instrumentation-sampling transformations (the paper's section 2
    and 3, plus the section 4.5 yieldpoint optimization).

    All transforms take the method *after* optimization and yieldpoint
    insertion — the paper applies its framework "in the last phase of
    Jalapeno's low-level IR" — and return a new function; the input is
    never mutated. *)

type result = {
  func : Ir.Lir.func;
  static_checks : int; (** check sites present in the emitted code *)
  duplicated_blocks : int; (** blocks with role [Dup] *)
}

val exhaustive : Spec.t -> Ir.Lir.func -> result
(** Insert every instrumentation operation unconditionally (no framework) —
    the baseline of Table 1. *)

val checks_only :
  entries:bool -> backedges:bool -> Ir.Lir.func -> result
(** Insert checks that never divert control (sample target = fall-through)
    and duplicate nothing: the configuration the paper uses to break down
    direct check overhead in Table 2 ("this configuration cannot be used
    to sample instrumentation"). *)

val full_dup : Spec.t -> Ir.Lir.func -> result
(** Full-Duplication (section 2): duplicate all code, checks on method
    entry and all backedges of the checking code, all instrumentation in
    the duplicated code, duplicated-code backedges transfer back to the
    checking code.  Guarantees Property 1. *)

val full_dup_yieldpoint_opt : Spec.t -> Ir.Lir.func -> result
(** Full-Duplication with the Jalapeno-specific optimization (section
    4.5): yieldpoints are removed from the checking code and only survive
    in the duplicated code, so the checks subsume their cost. *)

val partial_dup : Spec.t -> Ir.Lir.func -> result
(** Partial-Duplication (section 3.1): Full-Duplication, then removal of
    top-nodes and bottom-nodes from the duplicated code with the check
    adjustments of the paper, preserving Property 1. *)

val no_dup : Spec.t -> Ir.Lir.func -> result
(** No-Duplication (section 3.2): no code duplication; every
    instrumentation operation is individually guarded by a check.
    Property 1 may be violated. *)

val count_checks : Ir.Lir.func -> int
(** Static check sites ([Check] terminators + guarded ops) in a function. *)
